//! The client: typed request/response methods — blocking or pipelined —
//! over one multiplexed connection.
//!
//! Since wire v3 a connection is **multiplexed**: every request carries a
//! client-assigned id its response echoes, so many requests can be in
//! flight at once and responses may complete out of order. The [`Client`]
//! owns the write half plus a background reader thread that demuxes
//! incoming responses into per-request slots:
//!
//! ```text
//!  submit_*() ──write frame──►  TCP  ──►  server
//!      │ returns                 │
//!      ▼                         ▼
//!  Pending<T> ◄──slot◄── reader thread (demux by echoed id)
//!      │
//!      └─ wait() blocks until *this* id resolves
//! ```
//!
//! Two API layers share that machinery:
//!
//! * **Blocking methods** ([`Client::ingest_batch`], [`Client::stats`],
//!   …) — unchanged signatures from the lockstep era, now sugar for
//!   `submit_*()?.wait()` (exactly one request in flight).
//! * **Pipelined handles** ([`Client::submit_stats`] and friends) —
//!   return a [`Pending`] immediately; keep up to
//!   [`ClientConfig::max_in_flight`] submitted before waiting any, and
//!   the connection amortizes one round trip over the whole window.
//!
//! Since wire v4 every request is addressed to a **namespace** (a
//! logical tenant engine on the server). The un-suffixed methods all
//! target the default namespace 0, so single-tenant code is unchanged;
//! the `*_ns` variants ([`Client::ingest_batch_ns`],
//! [`Client::submit_stats_ns`], …) address any tenant, and
//! [`Client::create_namespace`] / [`Client::drop_namespace`] /
//! [`Client::list_namespaces`] manage the tenant set itself.
//!
//! The recoverable/fatal error split is preserved *per request*: an
//! in-band error response resolves only its own id (as
//! [`ClientError::Server`]); a connection-level failure (I/O error,
//! undecodable response stream) is fatal and fails every outstanding
//! [`Pending`] with a connection error — see
//! [`ClientError::is_recoverable`].
//!
//! Protocol payloads convert back into engine types at the boundary: raw
//! `(index, delta)` pairs become [`pts_stream::Update`]s on the way out
//! and [`pts_samplers::Sample`]s on the way back, snapshot bytes decode
//! into [`pts_engine::EngineSnapshot`].

use crate::obs::{kind_name, obs};
use pts_engine::EngineSnapshot;
use pts_obs::{Span, Stopwatch, Tracer};
use pts_samplers::Sample;
use pts_stream::Update;
use pts_util::protocol::{
    read_response, write_request_traced, Request, Response, ServiceError, ServiceStats,
    TraceContext, DEFAULT_NAMESPACE,
};
use pts_util::wire::WireError;
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default [`ClientConfig::max_in_flight`]: deep enough to saturate a
/// loopback connection (the `m1` experiment sweeps D ∈ {1, 4, 16, 64}).
pub const DEFAULT_MAX_IN_FLIGHT: usize = 64;

/// How many responses to ids nobody is waiting on (duplicate ids, ids
/// never submitted) the demux buffers before discarding the oldest —
/// a hostile or buggy server must not grow client memory unboundedly.
const STRAY_BUFFER: usize = 1024;

/// Connection-level knobs for a [`Client`], builder-style.
///
/// The defaults reproduce the client's historical behavior exactly:
/// no deadline anywhere (connect, read, and write all block as long as
/// the OS lets them), plus a [`DEFAULT_MAX_IN_FLIGHT`] pipelining window.
/// Latency-sensitive callers — the `pts-cluster` coordinator above all,
/// which must *detect* a dead node rather than hang on it — tighten the
/// deadlines:
///
/// ```no_run
/// use pts_server::{Client, ClientConfig};
/// use std::time::Duration;
///
/// let config = ClientConfig::new()
///     .connect_timeout(Duration::from_secs(1))
///     .read_timeout(Duration::from_secs(5))
///     .write_timeout(Duration::from_secs(5))
///     .max_in_flight(16);
/// let client = Client::connect_with("127.0.0.1:4000", &config).unwrap();
/// # let _ = client;
/// ```
///
/// Timeout semantics: `read_timeout` is a **response deadline** — the
/// connection is declared dead (failing every outstanding request) only
/// when requests are in flight and no response frame has arrived within
/// the window; an idle multiplexed connection never times out. A write
/// deadline expires in the submitting call itself. After any expiry the
/// stream position is unknowable — discard the client and reconnect; do
/// not retry on the same connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection (`None` = OS default).
    pub connect_timeout: Option<Duration>,
    /// Response deadline: with requests in flight, how long the reader
    /// waits for the next response frame before declaring the connection
    /// dead (`None` = block indefinitely).
    pub read_timeout: Option<Duration>,
    /// Per-write socket deadline while sending request bytes
    /// (`None` = block indefinitely).
    pub write_timeout: Option<Duration>,
    /// Pipelining window: how many requests may be awaiting responses on
    /// this connection before `submit_*` blocks for a slot. Minimum 1
    /// (a zero is treated as 1 — lockstep).
    pub max_in_flight: usize,
    /// Trace sampling rate (wire v5): a `submit_*` call with no explicit
    /// parent trace starts a fresh distributed trace on every
    /// `trace_every`-th request. 0 (the default) disables sampling; in
    /// the obs-off build nothing is ever sampled regardless.
    pub trace_every: u64,
    /// Phase shift for the deterministic trace sampler (see
    /// [`pts_obs::Tracer`]): with `trace_every = N`, request `k` is
    /// sampled iff `k ≡ trace_seed (mod N)`.
    pub trace_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: None,
            read_timeout: None,
            write_timeout: None,
            max_in_flight: DEFAULT_MAX_IN_FLIGHT,
            trace_every: 0,
            trace_seed: 0,
        }
    }
}

impl ClientConfig {
    /// The default configuration: no deadlines, matching
    /// [`Client::connect`]'s historical behavior, and a
    /// [`DEFAULT_MAX_IN_FLIGHT`] pipelining window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the connect deadline.
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Sets the response deadline (see the type docs for its multiplexed
    /// semantics).
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// Sets the per-write deadline.
    pub fn write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = Some(timeout);
        self
    }

    /// Sets the pipelining window (clamped to ≥ 1; 1 = lockstep).
    pub fn max_in_flight(mut self, depth: usize) -> Self {
        self.max_in_flight = depth.max(1);
        self
    }

    /// Enables trace sampling: one in `every` submitted requests starts
    /// a distributed trace (0 disables — the default).
    pub fn trace_sampling(mut self, every: u64) -> Self {
        self.trace_every = every;
        self
    }

    /// Sets the trace sampler's phase shift (see
    /// [`ClientConfig::trace_seed`]).
    pub fn trace_seed(mut self, seed: u64) -> Self {
        self.trace_seed = seed;
        self
    }
}

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed at the socket level (or a fatal connection
    /// error observed by the reader thread — every outstanding request
    /// resolves with one of these).
    Io(std::io::Error),
    /// The server's bytes could not be decoded as a response frame.
    Wire(WireError),
    /// The server answered with an in-band error response.
    Server(ServiceError),
    /// The server answered with a well-formed response of the wrong kind
    /// for the request that was sent.
    UnexpectedResponse(&'static str),
    /// A checkpoint too large to ship in one `Restore` request
    /// ([`pts_util::protocol::MAX_RESTORE_BYTES`]); restore it out-of-band
    /// by starting the replacement server from the bytes directly
    /// (`ShardedEngine::restore` / `ConcurrentEngine::restore`). Detected
    /// client-side, before anything is sent, so the connection survives.
    CheckpointTooLarge {
        /// The oversized checkpoint's byte count.
        bytes: usize,
    },
}

impl ClientError {
    /// The uniform recoverability classification shared across the
    /// stack's error surfaces (`pts_util::wire::FrameError` and
    /// `pts_cluster::ClusterError` follow the same contract): `true`
    /// means the failure was scoped to one request and the **connection
    /// is still usable** — keep submitting on it; `false` means the
    /// connection's stream state is lost — discard the client and
    /// reconnect.
    ///
    /// Recoverable: [`ClientError::Server`] (an in-band error response,
    /// resolved under its own request id), [`ClientError::UnexpectedResponse`]
    /// (the frame demuxed cleanly; the payload kind was wrong for one
    /// request), and [`ClientError::CheckpointTooLarge`] (rejected before
    /// anything was sent). Fatal: [`ClientError::Io`] and
    /// [`ClientError::Wire`] — after either, response frames can no
    /// longer be attributed to requests.
    pub fn is_recoverable(&self) -> bool {
        match self {
            ClientError::Io(_) | ClientError::Wire(_) => false,
            ClientError::Server(_)
            | ClientError::UnexpectedResponse(_)
            | ClientError::CheckpointTooLarge { .. } => true,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol decode error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::UnexpectedResponse(what) => {
                write!(f, "unexpected response kind (wanted {what})")
            }
            ClientError::CheckpointTooLarge { bytes } => write!(
                f,
                "checkpoint of {bytes} bytes exceeds the Restore request cap \
                 ({} bytes); restore it out-of-band",
                pts_util::protocol::MAX_RESTORE_BYTES
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Why the connection died, kept cloneable so every waiter can receive
/// its own [`ClientError::Io`] rendering of the same root cause.
#[derive(Debug, Clone)]
struct DeadReason {
    kind: std::io::ErrorKind,
    detail: String,
}

impl DeadReason {
    fn to_error(&self) -> ClientError {
        ClientError::Io(std::io::Error::new(self.kind, self.detail.clone()))
    }
}

/// One request's slot in the demux table.
#[derive(Debug)]
enum Slot {
    /// Submitted; its response has not arrived.
    Waiting,
    /// The response arrived before anyone waited.
    Ready(Response),
}

/// The state the reader thread and all [`Pending`] handles share.
#[derive(Debug, Default)]
struct DemuxState {
    /// Outstanding requests by id.
    slots: HashMap<u64, Slot>,
    /// How many slots are still [`Slot::Waiting`] (drives the response
    /// deadline: only unanswered requests arm it).
    waiting: usize,
    /// When the current wait-for-a-response window started: set when the
    /// connection goes from idle to having waiters, refreshed by every
    /// arriving response frame, cleared when the last waiter resolves.
    pending_since: Option<Instant>,
    /// Responses to ids nobody was waiting on (bounded; see
    /// [`STRAY_BUFFER`]). [`Client::recv_response`] drains it.
    stray: VecDeque<(u64, Response)>,
    /// `Some` once the connection is dead; every present and future
    /// waiter resolves with this.
    dead: Option<DeadReason>,
}

/// The demux table plus its wakeup signal.
#[derive(Debug, Default)]
struct Demux {
    state: Mutex<DemuxState>,
    cv: Condvar,
}

impl Demux {
    /// Routes one arrived response: resolves its slot if someone is
    /// waiting on the id, otherwise buffers it as stray.
    fn deliver(&self, id: u64, resp: Response) {
        let Ok(mut s) = self.state.lock() else {
            return;
        };
        match s.slots.get_mut(&id) {
            Some(slot @ Slot::Waiting) => {
                *slot = Slot::Ready(resp);
                s.waiting -= 1;
                s.pending_since = if s.waiting == 0 {
                    None
                } else {
                    Some(Instant::now())
                };
            }
            _ => {
                if s.stray.len() >= STRAY_BUFFER {
                    s.stray.pop_front();
                }
                s.stray.push_back((id, resp));
                // A frame arrived — the connection is alive; re-arm the
                // response deadline for whoever is still waiting.
                if s.waiting > 0 {
                    s.pending_since = Some(Instant::now());
                }
            }
        }
        drop(s);
        self.cv.notify_all();
    }

    /// Marks the connection dead (first cause wins) and wakes every
    /// waiter — each resolves with a connection error.
    fn die(&self, kind: std::io::ErrorKind, detail: impl Into<String>) {
        if let Ok(mut s) = self.state.lock() {
            if s.dead.is_none() {
                s.dead = Some(DeadReason {
                    kind,
                    detail: detail.into(),
                });
            }
        }
        self.cv.notify_all();
    }

    /// Whether the response deadline has expired: some request has been
    /// waiting and no frame has arrived for at least `timeout`.
    fn overdue(&self, timeout: Option<Duration>) -> bool {
        let (Some(timeout), Ok(s)) = (timeout, self.state.lock()) else {
            return false;
        };
        matches!(s.pending_since, Some(since) if since.elapsed() >= timeout)
    }
}

/// A handle to one in-flight request: resolves to the typed result via
/// [`Pending::wait`]. Dropping it without waiting abandons the request
/// (the response, when it arrives, is discarded) — it does **not** cancel
/// anything server-side.
#[must_use = "a Pending resolves only through wait(); dropping it abandons the request"]
#[derive(Debug)]
pub struct Pending<T> {
    demux: Arc<Demux>,
    id: u64,
    decode: fn(Response) -> Result<T, ClientError>,
    done: bool,
    /// The `client.submit` span covering submit→resolve (a no-op handle
    /// for untraced requests); records when this handle resolves or is
    /// abandoned.
    span: Span,
    /// Feeds the `server.client.resolve.ns` submit→resolve histogram.
    sw: Stopwatch,
}

impl<T> Pending<T> {
    /// The request id this handle is waiting on (ids are assigned
    /// sequentially from 1 per connection).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until this request's response arrives (in any order
    /// relative to other in-flight requests) and decodes it. An in-band
    /// error response resolves as [`ClientError::Server`] — scoped to
    /// this request only; a connection-level failure resolves every
    /// outstanding `Pending` as [`ClientError::Io`].
    pub fn wait(self) -> Result<T, ClientError> {
        self.wait_deadline(None)
            .map(|resolved| resolved.expect("no deadline: wait_deadline resolves or errors"))
    }

    /// [`Pending::wait`] with a per-call deadline: `Ok(Some(value))` when
    /// the response arrives in time, `Ok(None)` when the deadline expires
    /// first, `Err` exactly like [`Pending::wait`].
    ///
    /// Expiry abandons **this request only** — identical to dropping the
    /// handle: the slot is released, the **connection stays usable** (the
    /// late response, if it ever arrives, lands in the bounded stray
    /// buffer and is discarded), and nothing is cancelled server-side.
    /// This is scoped backpressure, not failure detection — for declaring
    /// a connection dead use [`ClientConfig::read_timeout`], which fails
    /// every outstanding request when no frame arrives in the window.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Option<T>, ClientError> {
        self.wait_deadline(Some(Instant::now() + timeout))
    }

    fn wait_deadline(mut self, deadline: Option<Instant>) -> Result<Option<T>, ClientError> {
        self.done = true;
        let poisoned = || ClientError::Io(std::io::Error::other("client demux poisoned"));
        let Ok(mut s) = self.demux.state.lock() else {
            return Err(poisoned());
        };
        let resp = loop {
            match s.slots.remove(&self.id) {
                Some(Slot::Ready(resp)) => break resp,
                Some(Slot::Waiting) => {
                    s.slots.insert(self.id, Slot::Waiting);
                }
                // Only reachable dead: the reader cleared nothing, but a
                // poisoned path may have; fall through to the dead check.
                None => {}
            }
            if let Some(dead) = &s.dead {
                let err = dead.to_error();
                if matches!(s.slots.remove(&self.id), Some(Slot::Waiting)) {
                    s.waiting -= 1;
                }
                drop(s);
                self.demux.cv.notify_all();
                return Err(err);
            }
            s = match deadline {
                None => match self.demux.cv.wait(s) {
                    Ok(guard) => guard,
                    Err(_) => return Err(poisoned()),
                },
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        // Expired: release the slot exactly like Drop
                        // does, so the connection keeps working and the
                        // late response becomes a bounded stray.
                        if matches!(s.slots.remove(&self.id), Some(Slot::Waiting)) {
                            s.waiting -= 1;
                            if s.waiting == 0 {
                                s.pending_since = None;
                            }
                        }
                        drop(s);
                        self.demux.cv.notify_all();
                        return Ok(None);
                    }
                    match self.demux.cv.wait_timeout(s, d - now) {
                        Ok((guard, _)) => guard,
                        Err(_) => return Err(poisoned()),
                    }
                }
            };
        };
        drop(s);
        // A slot freed: a submit blocked on the in-flight cap can run.
        self.demux.cv.notify_all();
        // Resolved: close the submit→resolve span and record the latency
        // before decoding (decode cost is the caller's, not the wire's).
        obs().client_resolve.observe_elapsed(self.sw);
        std::mem::take(&mut self.span).finish();
        match resp {
            Response::Error(e) => Err(ClientError::Server(e)),
            other => (self.decode)(other).map(Some),
        }
    }
}

impl<T> Drop for Pending<T> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        if let Ok(mut s) = self.demux.state.lock() {
            if matches!(s.slots.remove(&self.id), Some(Slot::Waiting)) {
                s.waiting -= 1;
                if s.waiting == 0 {
                    s.pending_since = None;
                }
            }
        }
        self.demux.cv.notify_all();
    }
}

/// A multiplexed connection to a [`crate::Server`]: a writer owned by the
/// caller plus a background reader thread demuxing responses by id (see
/// the module docs for the two API layers).
///
/// Not `Clone` and not `Sync` by design: one `Client` is one submission
/// stream. Pipelining happens through [`Pending`] handles, not through
/// sharing the client across threads.
#[derive(Debug)]
pub struct Client {
    writer: BufWriter<TcpStream>,
    /// A separate handle for `Drop`'s socket shutdown (unblocks the
    /// reader thread).
    stream: TcpStream,
    demux: Arc<Demux>,
    reader: Option<JoinHandle<()>>,
    /// The next request id to assign (sequential from 1; id 0 is
    /// reserved on the wire).
    next_id: u64,
    max_in_flight: usize,
    /// Starts a fresh trace on every [`ClientConfig::trace_every`]-th
    /// submit that carries no explicit parent context (disabled by
    /// default — and always in the obs-off build).
    tracer: Tracer,
}

/// A successfully written request: the assigned id plus the client-side
/// span and stopwatch that travel into the [`Pending`] and resolve with
/// its response.
struct Submitted {
    id: u64,
    span: Span,
    sw: Stopwatch,
}

impl Client {
    /// Connects to a server with the default [`ClientConfig`] (no
    /// deadlines).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, &ClientConfig::default())
    }

    /// Connects to a server under the given connection configuration.
    ///
    /// With a `connect_timeout`, every resolved address is tried in turn
    /// under its own deadline (mirroring `TcpStream::connect`'s
    /// multi-address behavior); the last failure is reported if none
    /// accepts.
    pub fn connect_with(addr: impl ToSocketAddrs, config: &ClientConfig) -> std::io::Result<Self> {
        let stream = match config.connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(timeout) => {
                let mut last_err = None;
                let mut stream = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, timeout) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                match stream {
                    Some(s) => s,
                    None => {
                        return Err(last_err.unwrap_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                "address resolved to no endpoints",
                            )
                        }))
                    }
                }
            }
        };
        stream.set_nodelay(true)?;
        stream.set_write_timeout(config.write_timeout)?;
        let read_half = stream.try_clone()?;
        // The reader polls in short slices so the response deadline is
        // judged against *pending requests*, not against idle time (an
        // idle multiplexed connection must not time out).
        read_half.set_read_timeout(Some(
            config
                .read_timeout
                .unwrap_or(Duration::from_millis(100))
                .min(Duration::from_millis(100)),
        ))?;
        let demux = Arc::new(Demux::default());
        let reader_demux = Arc::clone(&demux);
        let read_timeout = config.read_timeout;
        let reader = std::thread::Builder::new()
            .name("pts-client-reader".into())
            .spawn(move || reader_loop(read_half, reader_demux, read_timeout))?;
        Ok(Self {
            writer: BufWriter::new(stream.try_clone()?),
            stream,
            demux,
            reader: Some(reader),
            next_id: 1,
            max_in_flight: config.max_in_flight.max(1),
            tracer: Tracer::new(config.trace_seed, config.trace_every),
        })
    }

    /// [`Client::submit_traced`] with no explicit parent — the
    /// connection's own sampler decides whether a trace starts here.
    fn submit_raw(&mut self, ns: u64, request: &Request) -> Result<Submitted, ClientError> {
        self.submit_traced(ns, None, request)
    }

    /// Assigns an id, registers its slot (blocking while the connection
    /// is at [`ClientConfig::max_in_flight`]), and writes one request
    /// frame addressed to `ns` carrying the request's trace context
    /// (wire v5). An explicit `parent` — the coordinator propagating its
    /// scatter trace — wins; otherwise the connection's own
    /// [`Tracer`] may start a fresh trace; untraced requests carry the
    /// `0` marker and a no-op span. A write failure is fatal: the stream
    /// position is torn, so the connection is poisoned and every
    /// outstanding request fails.
    fn submit_traced(
        &mut self,
        ns: u64,
        parent: Option<TraceContext>,
        request: &Request,
    ) -> Result<Submitted, ClientError> {
        let mut span = match parent {
            Some(ctx) => Span::start(ctx.trace_id, ctx.parent_span_id, "client.submit"),
            None => match self.tracer.sample() {
                Some(trace_id) => Span::start(trace_id, 0, "client.submit"),
                None => Span::noop(),
            },
        };
        let trace = span.is_recording().then(|| TraceContext {
            trace_id: span.trace_id(),
            parent_span_id: span.id(),
        });
        let sw = Stopwatch::start();
        let id = {
            let Ok(mut s) = self.demux.state.lock() else {
                return Err(ClientError::Io(std::io::Error::other(
                    "client demux poisoned",
                )));
            };
            loop {
                if let Some(dead) = &s.dead {
                    return Err(dead.to_error());
                }
                // Gate on *unanswered* requests, not table size: a slot
                // whose response arrived but hasn't been claimed by its
                // `wait()` yet is no longer in flight on the wire, and
                // counting it would deadlock a submit-all-then-wait-all
                // caller at the cap.
                if s.waiting < self.max_in_flight {
                    break;
                }
                s = match self.demux.cv.wait(s) {
                    Ok(guard) => guard,
                    Err(_) => {
                        return Err(ClientError::Io(std::io::Error::other(
                            "client demux poisoned",
                        )))
                    }
                };
            }
            let id = self.next_id;
            self.next_id += 1;
            s.slots.insert(id, Slot::Waiting);
            s.waiting += 1;
            if s.pending_since.is_none() {
                s.pending_since = Some(Instant::now());
            }
            id
        };
        if span.is_recording() {
            span.tag(format!("kind={} ns={ns} id={id}", kind_name(request)));
        }
        match write_request_traced(id, ns, trace, request, &mut self.writer)
            .and_then(|()| self.writer.flush())
        {
            Ok(()) => Ok(Submitted { id, span, sw }),
            Err(e) => {
                if let Ok(mut s) = self.demux.state.lock() {
                    if matches!(s.slots.remove(&id), Some(Slot::Waiting)) {
                        s.waiting -= 1;
                    }
                }
                self.demux
                    .die(e.kind(), format!("request write failed: {e}"));
                Err(ClientError::Io(e))
            }
        }
    }

    /// Builds the typed handle for a written request.
    fn pending<T>(
        &self,
        sub: Submitted,
        decode: fn(Response) -> Result<T, ClientError>,
    ) -> Pending<T> {
        Pending {
            demux: Arc::clone(&self.demux),
            id: sub.id,
            decode,
            done: false,
            span: sub.span,
            sw: sub.sw,
        }
    }

    // ---- pipelined submission API -------------------------------------
    //
    // The un-suffixed methods are namespace-0 sugar; the `_ns` variants
    // address any tenant.

    /// Submits a batch of turnstile updates without waiting; resolves to
    /// the accepted count.
    pub fn submit_ingest_batch(&mut self, batch: &[Update]) -> Result<Pending<u64>, ClientError> {
        self.submit_ingest_batch_ns(DEFAULT_NAMESPACE, batch)
    }

    /// [`Client::submit_ingest_batch`] addressed to namespace `ns`.
    pub fn submit_ingest_batch_ns(
        &mut self,
        ns: u64,
        batch: &[Update],
    ) -> Result<Pending<u64>, ClientError> {
        let pairs = batch.iter().map(|u| (u.index, u.delta)).collect();
        let sub = self.submit_raw(ns, &Request::IngestBatch(pairs))?;
        Ok(self.pending(sub, decode_ingested))
    }

    /// Submits a `count`-draw sample request without waiting; resolves to
    /// the draws in draw order.
    pub fn submit_sample_many(
        &mut self,
        count: u64,
    ) -> Result<Pending<Vec<Option<Sample>>>, ClientError> {
        self.submit_sample_many_ns(DEFAULT_NAMESPACE, count)
    }

    /// [`Client::submit_sample_many`] addressed to namespace `ns`.
    pub fn submit_sample_many_ns(
        &mut self,
        ns: u64,
        count: u64,
    ) -> Result<Pending<Vec<Option<Sample>>>, ClientError> {
        self.submit_sample_many_ns_traced(ns, count, None)
    }

    /// [`Client::submit_sample_many_ns`] carrying an explicit parent
    /// trace context — how the coordinator's gather propagates its trace
    /// into per-node fetches; `None` falls back to this connection's own
    /// sampler.
    pub fn submit_sample_many_ns_traced(
        &mut self,
        ns: u64,
        count: u64,
        parent: Option<TraceContext>,
    ) -> Result<Pending<Vec<Option<Sample>>>, ClientError> {
        let sub = self.submit_traced(ns, parent, &Request::Sample { count })?;
        Ok(self.pending(sub, decode_samples))
    }

    /// Submits a snapshot request without waiting.
    pub fn submit_snapshot(&mut self) -> Result<Pending<EngineSnapshot>, ClientError> {
        self.submit_snapshot_ns(DEFAULT_NAMESPACE)
    }

    /// [`Client::submit_snapshot`] addressed to namespace `ns`.
    pub fn submit_snapshot_ns(&mut self, ns: u64) -> Result<Pending<EngineSnapshot>, ClientError> {
        let sub = self.submit_raw(ns, &Request::Snapshot)?;
        Ok(self.pending(sub, decode_snapshot))
    }

    /// Submits a stats request without waiting — the building block of
    /// the cluster's concurrent `Stats` scatter.
    pub fn submit_stats(&mut self) -> Result<Pending<ServiceStats>, ClientError> {
        self.submit_stats_ns(DEFAULT_NAMESPACE)
    }

    /// [`Client::submit_stats`] addressed to namespace `ns` — stats are
    /// per-tenant (each namespace has its own counters, mass, support).
    pub fn submit_stats_ns(&mut self, ns: u64) -> Result<Pending<ServiceStats>, ClientError> {
        self.submit_stats_ns_traced(ns, None)
    }

    /// [`Client::submit_stats_ns`] carrying an explicit parent trace
    /// context — how the coordinator's mass scatter propagates its trace
    /// into per-node queries; `None` falls back to this connection's own
    /// sampler.
    pub fn submit_stats_ns_traced(
        &mut self,
        ns: u64,
        parent: Option<TraceContext>,
    ) -> Result<Pending<ServiceStats>, ClientError> {
        let sub = self.submit_traced(ns, parent, &Request::Stats)?;
        Ok(self.pending(sub, decode_stats))
    }

    /// Submits a checkpoint pull without waiting.
    pub fn submit_checkpoint(&mut self) -> Result<Pending<Vec<u8>>, ClientError> {
        self.submit_checkpoint_ns(DEFAULT_NAMESPACE)
    }

    /// [`Client::submit_checkpoint`] addressed to namespace `ns` —
    /// checkpoints are per-tenant, which is what makes individual tenants
    /// migratable.
    pub fn submit_checkpoint_ns(&mut self, ns: u64) -> Result<Pending<Vec<u8>>, ClientError> {
        let sub = self.submit_raw(ns, &Request::Checkpoint)?;
        Ok(self.pending(sub, decode_checkpoint))
    }

    /// Submits a restore without waiting (the [`Client::restore`] size
    /// cap applies before anything is sent).
    pub fn submit_restore(&mut self, checkpoint: &[u8]) -> Result<Pending<()>, ClientError> {
        self.submit_restore_ns(DEFAULT_NAMESPACE, checkpoint)
    }

    /// [`Client::submit_restore`] addressed to namespace `ns`.
    pub fn submit_restore_ns(
        &mut self,
        ns: u64,
        checkpoint: &[u8],
    ) -> Result<Pending<()>, ClientError> {
        if checkpoint.len() as u64 > pts_util::protocol::MAX_RESTORE_BYTES {
            return Err(ClientError::CheckpointTooLarge {
                bytes: checkpoint.len(),
            });
        }
        let sub = self.submit_raw(ns, &Request::Restore(checkpoint.to_vec()))?;
        Ok(self.pending(sub, decode_restored))
    }

    /// Submits a server shutdown request without waiting (server-scoped:
    /// no namespace to address).
    pub fn submit_shutdown(&mut self) -> Result<Pending<()>, ClientError> {
        let sub = self.submit_raw(DEFAULT_NAMESPACE, &Request::Shutdown)?;
        Ok(self.pending(sub, decode_shutdown))
    }

    /// Submits a namespace creation without waiting. The server builds
    /// the tenant's engine through its spawner; creating an existing
    /// namespace (or 0) resolves as a recoverable server error.
    pub fn submit_create_namespace(&mut self, ns: u64) -> Result<Pending<()>, ClientError> {
        let sub = self.submit_raw(ns, &Request::CreateNamespace)?;
        Ok(self.pending(sub, decode_ns_created))
    }

    /// Submits a namespace drop without waiting. Dropping namespace 0 or
    /// a namespace the server does not host resolves as a recoverable
    /// server error.
    pub fn submit_drop_namespace(&mut self, ns: u64) -> Result<Pending<()>, ClientError> {
        let sub = self.submit_raw(ns, &Request::DropNamespace)?;
        Ok(self.pending(sub, decode_ns_dropped))
    }

    /// Submits a namespace listing without waiting; resolves to the
    /// hosted namespaces in ascending order.
    pub fn submit_list_namespaces(&mut self) -> Result<Pending<Vec<u64>>, ClientError> {
        let sub = self.submit_raw(DEFAULT_NAMESPACE, &Request::ListNamespaces)?;
        Ok(self.pending(sub, decode_namespaces))
    }

    // ---- blocking API (sugar: one in-flight request) ------------------

    /// Applies a batch of turnstile updates; returns the accepted count.
    pub fn ingest_batch(&mut self, batch: &[Update]) -> Result<u64, ClientError> {
        self.submit_ingest_batch(batch)?.wait()
    }

    /// [`Client::ingest_batch`] addressed to namespace `ns`.
    pub fn ingest_batch_ns(&mut self, ns: u64, batch: &[Update]) -> Result<u64, ClientError> {
        self.submit_ingest_batch_ns(ns, batch)?.wait()
    }

    /// Draws one sample from the served engine (`None` is the paper's ⊥).
    pub fn sample(&mut self) -> Result<Option<Sample>, ClientError> {
        Ok(self.sample_many(1)?.pop().flatten())
    }

    /// [`Client::sample`] addressed to namespace `ns`.
    pub fn sample_ns(&mut self, ns: u64) -> Result<Option<Sample>, ClientError> {
        Ok(self.sample_many_ns(ns, 1)?.pop().flatten())
    }

    /// Draws `count` samples in one round trip, in draw order.
    pub fn sample_many(&mut self, count: u64) -> Result<Vec<Option<Sample>>, ClientError> {
        self.submit_sample_many(count)?.wait()
    }

    /// [`Client::sample_many`] addressed to namespace `ns`.
    pub fn sample_many_ns(
        &mut self,
        ns: u64,
        count: u64,
    ) -> Result<Vec<Option<Sample>>, ClientError> {
        self.submit_sample_many_ns(ns, count)?.wait()
    }

    /// Fetches the engine's compact mergeable snapshot.
    pub fn snapshot(&mut self) -> Result<EngineSnapshot, ClientError> {
        self.submit_snapshot()?.wait()
    }

    /// [`Client::snapshot`] addressed to namespace `ns`.
    pub fn snapshot_ns(&mut self, ns: u64) -> Result<EngineSnapshot, ClientError> {
        self.submit_snapshot_ns(ns)?.wait()
    }

    /// Fetches the engine's counters, mass, and support.
    pub fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        self.submit_stats()?.wait()
    }

    /// [`Client::stats`] addressed to namespace `ns`.
    pub fn stats_ns(&mut self, ns: u64) -> Result<ServiceStats, ClientError> {
        self.submit_stats_ns(ns)?.wait()
    }

    /// Pulls a complete engine checkpoint (a framed `KIND_ENGINE` payload
    /// — feed it to an engine `restore`, persist it, or send it back via
    /// [`Client::restore`]).
    pub fn checkpoint(&mut self) -> Result<Vec<u8>, ClientError> {
        self.submit_checkpoint()?.wait()
    }

    /// [`Client::checkpoint`] addressed to namespace `ns`.
    pub fn checkpoint_ns(&mut self, ns: u64) -> Result<Vec<u8>, ClientError> {
        self.submit_checkpoint_ns(ns)?.wait()
    }

    /// Replaces the served engine's state with a previously captured
    /// checkpoint. Checkpoints above
    /// [`pts_util::protocol::MAX_RESTORE_BYTES`] are refused here, before
    /// anything is sent (shipping one would hit the server's frame cap
    /// and fatally close the connection); restore those out-of-band via
    /// the engine's own `restore`.
    pub fn restore(&mut self, checkpoint: &[u8]) -> Result<(), ClientError> {
        self.submit_restore(checkpoint)?.wait()
    }

    /// [`Client::restore`] addressed to namespace `ns` — how a migrated
    /// tenant's state lands on its new node.
    pub fn restore_ns(&mut self, ns: u64, checkpoint: &[u8]) -> Result<(), ClientError> {
        self.submit_restore_ns(ns, checkpoint)?.wait()
    }

    /// Asks the server to shut down (acknowledged before the server's
    /// accept loop exits).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.submit_shutdown()?.wait()
    }

    /// Creates namespace `ns` on the server (a fresh tenant engine built
    /// by the server's spawner).
    pub fn create_namespace(&mut self, ns: u64) -> Result<(), ClientError> {
        self.submit_create_namespace(ns)?.wait()
    }

    /// Drops namespace `ns`, releasing its tenant engine.
    pub fn drop_namespace(&mut self, ns: u64) -> Result<(), ClientError> {
        self.submit_drop_namespace(ns)?.wait()
    }

    /// Lists every namespace the server hosts, ascending (always
    /// contains 0).
    pub fn list_namespaces(&mut self) -> Result<Vec<u64>, ClientError> {
        self.submit_list_namespaces()?.wait()
    }

    // ---- fuzz-only hooks ----------------------------------------------

    /// Sends raw bytes **instead of** a well-formed request frame — the
    /// fuzz tests' hostile-client hook. The server's reply (if any) is
    /// read with [`Client::recv_response`].
    #[doc(hidden)]
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Pops the next response no [`Pending`] claimed (in arrival order),
    /// with its echoed request id — how the fuzz tests observe the
    /// server's answers to hostile frames sent via [`Client::send_raw`].
    /// Blocks until a stray response arrives or the connection dies.
    #[doc(hidden)]
    pub fn recv_response(&mut self) -> Result<(u64, Response), ClientError> {
        let Ok(mut s) = self.demux.state.lock() else {
            return Err(ClientError::Io(std::io::Error::other(
                "client demux poisoned",
            )));
        };
        loop {
            if let Some(hit) = s.stray.pop_front() {
                return Ok(hit);
            }
            if let Some(dead) = &s.dead {
                return Err(dead.to_error());
            }
            s = match self.demux.cv.wait(s) {
                Ok(guard) => guard,
                Err(_) => {
                    return Err(ClientError::Io(std::io::Error::other(
                        "client demux poisoned",
                    )))
                }
            };
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        // Unblock the reader (it sees EOF/reset), mark the connection
        // dead for any surviving Pending handles, and reap the thread.
        let _ = self.stream.shutdown(Shutdown::Both);
        self.demux
            .die(std::io::ErrorKind::ConnectionAborted, "client dropped");
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }
}

/// The background demux loop: reads response frames and routes each by
/// its echoed id until EOF, a decode failure, an I/O error, or an expired
/// response deadline (judged against pending requests — see
/// [`ClientConfig::read_timeout`]).
fn reader_loop(stream: TcpStream, demux: Arc<Demux>, read_timeout: Option<Duration>) {
    /// Retries the socket's short poll timeouts mid-frame until the
    /// whole-frame deadline passes — a response frame gets `read_timeout`
    /// from its first byte, not per read.
    struct PatientReader<'a> {
        inner: &'a mut BufReader<TcpStream>,
        deadline: Option<Instant>,
    }
    impl Read for PatientReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            loop {
                if matches!(self.deadline, Some(d) if Instant::now() >= d) {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "response deadline expired mid-frame",
                    ));
                }
                match self.inner.read(buf) {
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    other => return other,
                }
            }
        }
    }

    let mut reader = BufReader::new(stream);
    loop {
        // Poll for the first byte of the next frame in short slices so an
        // idle connection never trips the response deadline.
        let mut first = [0u8; 1];
        match reader.read(&mut first) {
            Ok(0) => {
                return demux.die(
                    std::io::ErrorKind::ConnectionAborted,
                    "connection closed by server",
                )
            }
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if demux.overdue(read_timeout) {
                    return demux.die(
                        std::io::ErrorKind::TimedOut,
                        "response deadline expired with requests in flight",
                    );
                }
                continue;
            }
            Err(e) => return demux.die(e.kind(), format!("read failed: {e}")),
        }
        let body = PatientReader {
            inner: &mut reader,
            deadline: read_timeout.map(|t| Instant::now() + t),
        };
        let mut src = std::io::Cursor::new(first).chain(body);
        match read_response(&mut src) {
            Ok((id, resp)) => demux.deliver(id, resp),
            // Any torn/undecodable frame desyncs the stream — after it,
            // responses can no longer be attributed to requests.
            Err(e) => {
                return demux.die(
                    std::io::ErrorKind::InvalidData,
                    format!("response stream desynced: {e}"),
                )
            }
        }
    }
}

// ---- typed response decoders (free fns so Pending stays a plain fn
// pointer, no per-request allocation) ----------------------------------

fn decode_ingested(resp: Response) -> Result<u64, ClientError> {
    match resp {
        Response::Ingested { accepted } => Ok(accepted),
        _ => Err(ClientError::UnexpectedResponse("Ingested")),
    }
}

fn decode_samples(resp: Response) -> Result<Vec<Option<Sample>>, ClientError> {
    match resp {
        Response::Samples(draws) => Ok(draws
            .into_iter()
            .map(|d| d.map(|(index, estimate)| Sample { index, estimate }))
            .collect()),
        _ => Err(ClientError::UnexpectedResponse("Samples")),
    }
}

fn decode_snapshot(resp: Response) -> Result<EngineSnapshot, ClientError> {
    match resp {
        Response::Snapshot(bytes) => Ok(EngineSnapshot::from_bytes(&bytes)?),
        _ => Err(ClientError::UnexpectedResponse("Snapshot")),
    }
}

fn decode_stats(resp: Response) -> Result<ServiceStats, ClientError> {
    match resp {
        Response::Stats(stats) => Ok(stats),
        _ => Err(ClientError::UnexpectedResponse("Stats")),
    }
}

fn decode_checkpoint(resp: Response) -> Result<Vec<u8>, ClientError> {
    match resp {
        Response::Checkpoint(bytes) => Ok(bytes),
        _ => Err(ClientError::UnexpectedResponse("Checkpoint")),
    }
}

fn decode_restored(resp: Response) -> Result<(), ClientError> {
    match resp {
        Response::Restored => Ok(()),
        _ => Err(ClientError::UnexpectedResponse("Restored")),
    }
}

fn decode_shutdown(resp: Response) -> Result<(), ClientError> {
    match resp {
        Response::ShuttingDown => Ok(()),
        _ => Err(ClientError::UnexpectedResponse("ShuttingDown")),
    }
}

fn decode_ns_created(resp: Response) -> Result<(), ClientError> {
    match resp {
        Response::NamespaceCreated => Ok(()),
        _ => Err(ClientError::UnexpectedResponse("NamespaceCreated")),
    }
}

fn decode_ns_dropped(resp: Response) -> Result<(), ClientError> {
    match resp {
        Response::NamespaceDropped => Ok(()),
        _ => Err(ClientError::UnexpectedResponse("NamespaceDropped")),
    }
}

fn decode_namespaces(resp: Response) -> Result<Vec<u64>, ClientError> {
    match resp {
        Response::Namespaces(ids) => Ok(ids),
        _ => Err(ClientError::UnexpectedResponse("Namespaces")),
    }
}
