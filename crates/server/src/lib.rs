//! # pts-server
//!
//! A wire-native TCP sampling service: a [`pts_engine`] front-end behind
//! the framed request/response protocol of [`pts_util::protocol`], built
//! on nothing but `std::net`.
//!
//! The ROADMAP's serving story in one picture (wire v4, multiplexed and
//! multi-tenant):
//!
//! ```text
//!  Client ──TCP──►  [ accept loop ]      one reader thread per
//!  Client ──TCP──►      │    │           connection, demuxing ids
//!                   reader   reader
//!                      \      /
//!                  [ worker pool ]       bounded; per-connection FIFO,
//!                        │               responses via per-conn write lock
//!                   [ TenantMap ]        namespace → Arc<Mutex<engine>>
//!                    │    │    │         (sharded-lock map; ns 0 is the
//!                   ns 0  ns 7  ns 42    default tenant, spawner builds
//!                                        the rest lazily on demand)
//! ```
//!
//! * **[`Server`]** binds a listener, hosts any
//!   [`pts_engine::SamplingService`] implementor, and serves each
//!   connection with a reader thread that demuxes v4 request-id frames
//!   into a bounded worker pool. Every request addresses a **namespace**
//!   (tenant): the engine passed at bind is namespace 0, and
//!   [`Server::bind_with_spawner`] / [`serve_with_spawner`] additionally
//!   accept a factory closure so clients can create and drop further
//!   tenants at runtime — each a fully isolated engine sharing the same
//!   worker pool (no per-tenant threads). Every readable request frame —
//!   malformed payloads included — gets exactly one response frame under
//!   the id it carried (id 0 when the failure is unattributable);
//!   protocol-recoverable errors (unknown namespaces included) keep the
//!   connection, framing-fatal ones close it (see `pts_util::protocol`
//!   for the normative classification).
//! * **[`Client`]** is the matching multiplexed client: the familiar
//!   blocking methods (ingest / sample / snapshot / stats / checkpoint /
//!   restore / shutdown) are sugar over one in-flight request against
//!   namespace 0, the `_ns` twins address any tenant, and the `submit_*`
//!   twins return [`Pending`] handles so one connection can hold up to
//!   [`ClientConfig::max_in_flight`] requests in flight with
//!   out-of-order completion. `create_namespace` / `drop_namespace` /
//!   `list_namespaces` manage the tenant set.
//! * **[`serve`]** is the one-call entry point `examples/serve_demo.rs`
//!   uses.
//!
//! ## Quickstart
//!
//! ```
//! use pts_engine::{ConcurrentEngine, EngineConfig, L0Factory};
//! use pts_server::{serve, Client};
//! use pts_stream::Update;
//!
//! // Any SamplingService implementor works; loopback port 0 = ephemeral.
//! let engine = ConcurrentEngine::new(
//!     EngineConfig::new(1 << 10).shards(2).pool_size(2).seed(7),
//!     L0Factory::default(),
//! );
//! let server = serve("127.0.0.1:0", engine).unwrap();
//!
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.ingest_batch(&[Update::new(3, 5), Update::new(900, -2)]).unwrap();
//! let draw = client.sample().unwrap().expect("non-zero state samples");
//! assert!(draw.index == 3 || draw.index == 900);
//!
//! let checkpoint = client.checkpoint().unwrap(); // full engine state, framed
//! client.shutdown_server().unwrap();
//! server.join();
//! # let _ = checkpoint;
//! ```
//!
//! Durability composes with serving: the checkpoint bytes a client pulls
//! are the same framed `KIND_ENGINE` payload `engine.checkpoint()` writes
//! to disk, so "checkpoint over the wire, kill the process, restore into
//! a fresh server" yields draw-for-draw identical behavior (pinned by
//! `tests/loopback.rs` and demonstrated by `examples/serve_demo.rs`).
//!
//! See `PROTOCOL.md` at the repository root for the byte-level frame
//! grammar and worked hex examples.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Library crates never print: diagnostics go through the pts-obs event
// ring (drainable, bounded), metrics through its registry.
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod client;
mod obs;
pub mod server;

pub use client::{Client, ClientConfig, ClientError, Pending, DEFAULT_MAX_IN_FLIGHT};
pub use server::{serve, serve_with_spawner, Server};
