//! Server instrumentation: pre-registered `pts-obs` handles.
//!
//! Same shape as the engine's: one struct of `Copy` handles behind a
//! `OnceLock`, so per-request cost is a relaxed atomic per touched metric.
//! Request kinds are a closed set, so each kind gets its own pre-labeled
//! series — the label is resolved at registration, never on the request
//! path. Metric names are inventoried in DESIGN.md §11.

use pts_obs::{registry, Counter, Gauge, Histogram};
use pts_util::protocol::Request;
use std::sync::OnceLock;

/// Per-request-kind handles: a count and a dispatch-latency histogram.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReqObs {
    /// `server.requests{kind=…}`.
    pub count: Counter,
    /// `server.request.ns{kind=…}` — time inside `dispatch`, engine lock
    /// included (that wait is part of what a client experiences).
    pub ns: Histogram,
}

/// The server's metric handles.
#[derive(Debug)]
pub(crate) struct ServerObs {
    pub ingest: ReqObs,
    pub sample: ReqObs,
    pub snapshot: ReqObs,
    pub stats: ReqObs,
    pub checkpoint: ReqObs,
    pub restore: ReqObs,
    pub shutdown: ReqObs,
    pub create_namespace: ReqObs,
    pub drop_namespace: ReqObs,
    pub list_namespaces: ReqObs,
    /// `server.tenants.active` — namespaces currently hosted (the
    /// default tenant included).
    pub tenants_active: Gauge,
    /// `server.tenant.bytes` — per-tenant checkpoint sizes: the
    /// serialized full-state footprint observed whenever a tenant is
    /// checkpointed (the bytes/tenant distribution `mt1` records).
    pub tenant_bytes: Histogram,
    /// `server.conn.opened` / `server.conn.closed` — connection lifecycle.
    pub conn_opened: Counter,
    pub conn_closed: Counter,
    /// `server.conn.active` — currently open connections.
    pub conn_active: Gauge,
    /// `server.conn.frame_timeouts` — whole-frame deadlines tripped.
    pub conn_timeouts: Counter,
    /// `server.requests.inflight` — requests enqueued (demuxed off a
    /// connection) but not yet answered, across all connections.
    pub inflight: Gauge,
    /// `server.frame_errors{class=…}` — the three `FrameError` classes
    /// plus sound frames whose payload failed to decode.
    pub frame_recoverable: Counter,
    pub frame_fatal: Counter,
    pub frame_too_large: Counter,
    pub frame_payload: Counter,
    /// `server.bytes.in` / `server.bytes.out` — request bytes read and
    /// response bytes flushed.
    pub bytes_in: Counter,
    pub bytes_out: Counter,
    /// `server.stage.ns{stage=…}` — per-stage latency split of one
    /// request's server-side journey (wire v5 tracing's histogram view):
    /// time queued behind the connection's FIFO, time waiting on the
    /// tenant's engine lock, time doing engine work, time writing the
    /// response.
    pub stage_queue_wait: Histogram,
    pub stage_lock_wait: Histogram,
    pub stage_engine: Histogram,
    pub stage_write: Histogram,
    /// `server.client.resolve.ns` — the client-side submit→resolve
    /// latency per pending id (registered here because the reference
    /// client lives in this crate).
    pub client_resolve: Histogram,
}

impl ServerObs {
    /// The handles for one request's kind.
    pub fn req(&self, request: &Request) -> ReqObs {
        match request {
            Request::IngestBatch(_) => self.ingest,
            Request::Sample { .. } => self.sample,
            Request::Snapshot => self.snapshot,
            Request::Stats => self.stats,
            Request::Checkpoint => self.checkpoint,
            Request::Restore(_) => self.restore,
            Request::Shutdown => self.shutdown,
            Request::CreateNamespace => self.create_namespace,
            Request::DropNamespace => self.drop_namespace,
            Request::ListNamespaces => self.list_namespaces,
        }
    }
}

/// A request kind's label value — the same strings the labeled series
/// are registered with, reused as span tags (`kind=…`) so the trace and
/// metric views of one request agree.
pub(crate) fn kind_name(request: &Request) -> &'static str {
    match request {
        Request::IngestBatch(_) => "ingest",
        Request::Sample { .. } => "sample",
        Request::Snapshot => "snapshot",
        Request::Stats => "stats",
        Request::Checkpoint => "checkpoint",
        Request::Restore(_) => "restore",
        Request::Shutdown => "shutdown",
        Request::CreateNamespace => "create_namespace",
        Request::DropNamespace => "drop_namespace",
        Request::ListNamespaces => "list_namespaces",
    }
}

fn req(kind: &'static str) -> ReqObs {
    let r = registry();
    ReqObs {
        count: r.counter_labeled("server.requests", "kind", kind),
        ns: r.histogram_labeled("server.request.ns", "kind", kind),
    }
}

/// The process-global server handles.
pub(crate) fn obs() -> &'static ServerObs {
    static OBS: OnceLock<ServerObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = registry();
        ServerObs {
            ingest: req("ingest"),
            sample: req("sample"),
            snapshot: req("snapshot"),
            stats: req("stats"),
            checkpoint: req("checkpoint"),
            restore: req("restore"),
            shutdown: req("shutdown"),
            create_namespace: req("create_namespace"),
            drop_namespace: req("drop_namespace"),
            list_namespaces: req("list_namespaces"),
            tenants_active: r.gauge("server.tenants.active"),
            tenant_bytes: r.histogram("server.tenant.bytes"),
            conn_opened: r.counter("server.conn.opened"),
            conn_closed: r.counter("server.conn.closed"),
            conn_active: r.gauge("server.conn.active"),
            conn_timeouts: r.counter("server.conn.frame_timeouts"),
            inflight: r.gauge("server.requests.inflight"),
            frame_recoverable: r.counter_labeled("server.frame_errors", "class", "recoverable"),
            frame_fatal: r.counter_labeled("server.frame_errors", "class", "fatal"),
            frame_too_large: r.counter_labeled("server.frame_errors", "class", "too_large"),
            frame_payload: r.counter_labeled("server.frame_errors", "class", "payload"),
            bytes_in: r.counter("server.bytes.in"),
            bytes_out: r.counter("server.bytes.out"),
            stage_queue_wait: r.histogram_labeled("server.stage.ns", "stage", "queue_wait"),
            stage_lock_wait: r.histogram_labeled("server.stage.ns", "stage", "lock_wait"),
            stage_engine: r.histogram_labeled("server.stage.ns", "stage", "engine"),
            stage_write: r.histogram_labeled("server.stage.ns", "stage", "write"),
            client_resolve: r.histogram("server.client.resolve.ns"),
        }
    })
}
