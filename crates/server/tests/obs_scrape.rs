//! The law under observation: a chi-squared sampling-law pin served
//! end-to-end through an instrumented server **while a concurrent
//! scraper hammers the metrics endpoint**.
//!
//! Observability must be a pure observer — registry atomics and scrape
//! traffic on a side listener cannot perturb the engine's sampling law or
//! the serving path. This test runs the `loopback.rs` chi-squared pin
//! with a scraper thread polling throughout, then checks the exposition
//! actually carried the instrumentation the traffic generated.

use pts_engine::{ConcurrentEngine, EngineConfig, L0Factory, SamplerFactory};
use pts_obs::MetricsServer;
use pts_server::{serve, Client};
use pts_stream::{FrequencyVector, Update};
use pts_util::stats::chi_square_test;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One scrape: GET, read to EOF, return the body after basic validation.
fn scrape(addr: std::net::SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("scrape connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("scrape request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("scrape read");
    assert!(
        response.starts_with("HTTP/1.0 200 OK\r\n"),
        "scrape answered {:?}",
        &response[..response.len().min(40)]
    );
    response
        .split_once("\r\n\r\n")
        .expect("header/body split")
        .1
        .to_string()
}

#[test]
fn law_holds_while_a_concurrent_scraper_polls() {
    let mut values = vec![0i64; 24];
    for (k, &i) in [1usize, 4, 7, 11, 13, 17, 20, 23].iter().enumerate() {
        values[i] = if k % 2 == 0 { 1 << k } else { -(3 + k as i64) };
    }
    let x = FrequencyVector::from_values(values);
    let factory = L0Factory::default();
    let weights: Vec<f64> = x.values().iter().map(|&v| factory.weight(v)).collect();
    let total: f64 = weights.iter().sum();
    let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();

    let engine = ConcurrentEngine::new(
        EngineConfig::new(x.n()).shards(2).pool_size(2).seed(11),
        factory,
    );
    let server = serve("127.0.0.1:0", engine).unwrap();
    let metrics = MetricsServer::bind("127.0.0.1:0").unwrap();
    let metrics_addr = metrics.local_addr();

    // The concurrent scraper: polls as fast as responses come back for
    // the whole duration of the law run.
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let scraper = std::thread::spawn(move || {
        let mut polls = 0u64;
        while !stop_flag.load(Ordering::SeqCst) {
            let _ = scrape(metrics_addr);
            polls += 1;
            std::thread::sleep(Duration::from_millis(2));
        }
        polls
    });

    let mut client = Client::connect(server.local_addr()).unwrap();
    let updates: Vec<Update> = x.iter_nonzero().map(|(i, v)| Update::new(i, v)).collect();
    client.ingest_batch(&updates).unwrap();

    let trials = 3_000u64;
    let mut counts = vec![0u64; x.n()];
    let mut fails = 0u64;
    let mut remaining = trials;
    while remaining > 0 {
        let take = remaining.min(500);
        for draw in client.sample_many(take).unwrap() {
            match draw {
                Some(s) => counts[s.index as usize] += 1,
                None => fails += 1,
            }
        }
        remaining -= take;
    }
    assert!(
        (fails as f64) < trials as f64 * 0.05,
        "fails {fails}/{trials}"
    );
    let chi = chi_square_test(&counts, &probs, 5.0);
    assert!(
        chi.p_value > 1e-4,
        "law under scrape load off: chi2 {:.2} p {:.6}",
        chi.statistic,
        chi.p_value
    );

    stop.store(true, Ordering::SeqCst);
    let polls = scraper.join().expect("scraper thread");
    assert!(polls > 0, "the scraper never completed a poll");

    // The exposition must reflect the traffic the law run generated.
    let body = scrape(metrics_addr);
    if pts_obs::enabled() {
        for series in [
            "pts_server_requests{kind=\"sample\"}",
            "pts_server_requests{kind=\"ingest\"}",
            "pts_server_conn_opened",
            "pts_engine_ingest_updates",
            "pts_engine_draw_ns_count",
            "pts_obs_scrapes",
        ] {
            assert!(body.contains(series), "missing {series} in:\n{body}");
        }
    } else {
        assert!(body.is_empty(), "obs-off exposition must be empty: {body}");
    }

    client.shutdown_server().unwrap();
    server.join();
    metrics.join();
}
