//! Per-tenant sampling law + cross-tenant isolation, against one **live**
//! multi-tenant server.
//!
//! * **Law, per tenant** — three concurrently-active tenants with
//!   *different universes and different factories* (L0 over 32, Lp≤2 over
//!   48, perfect-Lp over 24) behind one socket: each tenant's draws must
//!   fit its own ideal law `G(x_i)/Σ_j G(x_j)` by chi-squared, with the
//!   draw bursts interleaved across tenants so the laws are pinned while
//!   the neighbors are active — not one tenant at a time.
//! * **Isolation** — a tenant's draw stream through the shared server is
//!   compared **draw for draw** against a single-tenant control server
//!   built from the identical engine constructor, while the other tenants
//!   ingest and sample in between: if tenancy leaked any state (RNG,
//!   mass, pool instances), the subject would diverge from its control.
//!
//! The tenant engines are `ShardedEngine`s behind a delegating enum, so
//! one spawner can hand different factory types to different namespaces —
//! the server only sees the common [`SamplingService`] surface.

use pts_engine::{
    EngineConfig, EngineSnapshot, EngineStats, L0Factory, LpLe2Factory, PerfectLpFactory,
    SamplerFactory, SamplingService, ShardedEngine,
};
use pts_samplers::Sample;
use pts_server::{serve_with_spawner, Client, Server};
use pts_stream::{gen::zipf_vector, FrequencyVector, Update};
use pts_util::stats::chi_square_test;
use pts_util::wire::WireError;

/// One engine type per tenant *kind*: the server's spawner must return a
/// single engine type, so heterogeneous tenants delegate through an enum.
#[derive(Debug)]
enum TenantEngine {
    L0(ShardedEngine<L0Factory>),
    L2(ShardedEngine<LpLe2Factory>),
    Lp(ShardedEngine<PerfectLpFactory>),
}

macro_rules! delegate {
    ($self:ident, $e:ident => $body:expr) => {
        match $self {
            TenantEngine::L0($e) => $body,
            TenantEngine::L2($e) => $body,
            TenantEngine::Lp($e) => $body,
        }
    };
}

impl SamplingService for TenantEngine {
    fn universe(&self) -> usize {
        delegate!(self, e => e.universe())
    }
    fn ingest_batch(&mut self, batch: &[Update]) {
        delegate!(self, e => SamplingService::ingest_batch(e, batch))
    }
    fn sample(&mut self) -> Option<Sample> {
        delegate!(self, e => SamplingService::sample(e))
    }
    fn snapshot(&self) -> EngineSnapshot {
        delegate!(self, e => SamplingService::snapshot(e))
    }
    fn stats(&self) -> EngineStats {
        delegate!(self, e => SamplingService::stats(e))
    }
    fn mass(&self) -> f64 {
        delegate!(self, e => SamplingService::mass(e))
    }
    fn support(&self) -> usize {
        delegate!(self, e => SamplingService::support(e))
    }
    fn checkpoint_bytes(&mut self) -> std::io::Result<Vec<u8>> {
        delegate!(self, e => e.checkpoint_bytes())
    }
    fn restore_bytes(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        delegate!(self, e => e.restore_bytes(bytes))
    }
}

/// The shared engine constructor: a pure function of the namespace, used
/// by the multi-tenant server's spawner *and* to build the single-tenant
/// control servers — which is what makes draw-for-draw comparison
/// meaningful.
fn tenant_engine(ns: u64) -> TenantEngine {
    let config = |n: usize| EngineConfig::new(n).shards(2).pool_size(2).seed(911 + ns);
    match ns % 3 {
        1 => TenantEngine::L0(ShardedEngine::new(config(32), L0Factory::default())),
        2 => TenantEngine::L2(ShardedEngine::new(
            config(48),
            LpLe2Factory::for_universe(48, 2.0),
        )),
        _ => TenantEngine::Lp(ShardedEngine::new(
            config(24),
            PerfectLpFactory::for_universe(24, 3.0),
        )),
    }
}

fn updates_of(x: &FrequencyVector) -> Vec<Update> {
    x.iter_nonzero().map(|(i, v)| Update::new(i, v)).collect()
}

fn live_tenant_server() -> (Server, Client) {
    let server = serve_with_spawner("127.0.0.1:0", tenant_engine(0), tenant_engine).unwrap();
    let client = Client::connect(server.local_addr()).unwrap();
    (server, client)
}

/// One tenant's law-tally under interleaved driving.
struct LawTally {
    ns: u64,
    probs: Vec<f64>,
    counts: Vec<u64>,
    fails: u64,
    remaining: u64,
    max_fail: f64,
    trials: u64,
}

impl LawTally {
    fn new<F: SamplerFactory>(
        ns: u64,
        x: &FrequencyVector,
        factory: &F,
        trials: u64,
        max_fail: f64,
    ) -> Self {
        let weights: Vec<f64> = x.values().iter().map(|&v| factory.weight(v)).collect();
        let total: f64 = weights.iter().sum();
        Self {
            ns,
            probs: weights.iter().map(|w| w / total).collect(),
            counts: vec![0; x.n()],
            fails: 0,
            remaining: trials,
            max_fail,
            trials,
        }
    }

    fn tally(&mut self, draws: Vec<Option<Sample>>) {
        for draw in draws {
            match draw {
                Some(s) => self.counts[s.index as usize] += 1,
                None => self.fails += 1,
            }
        }
    }

    fn assert_law(&self) {
        assert!(
            (self.fails as f64) < self.trials as f64 * self.max_fail,
            "tenant {}: fails {}/{}",
            self.ns,
            self.fails,
            self.trials
        );
        let chi = chi_square_test(&self.counts, &self.probs, 5.0);
        assert!(
            chi.p_value > 1e-4,
            "tenant {} law off: chi2 {:.2} p {:.6}",
            self.ns,
            chi.statistic,
            chi.p_value
        );
    }
}

/// Three tenants with different universes and factories, driven through
/// one live server with their draw bursts interleaved: each fits its own
/// ideal law.
#[test]
fn per_tenant_laws_hold_concurrently_through_one_server() {
    let (server, mut client) = live_tenant_server();
    for ns in [1, 2, 3] {
        client.create_namespace(ns).unwrap();
    }

    let x1 = zipf_vector(32, 1.1, 20, 41);
    let x2 = zipf_vector(48, 1.2, 25, 42);
    let x3 = zipf_vector(24, 1.0, 15, 43);
    client.ingest_batch_ns(1, &updates_of(&x1)).unwrap();
    client.ingest_batch_ns(2, &updates_of(&x2)).unwrap();
    client.ingest_batch_ns(3, &updates_of(&x3)).unwrap();

    let mut laws = [
        LawTally::new(1, &x1, &L0Factory::default(), 2_400, 0.05),
        LawTally::new(2, &x2, &LpLe2Factory::for_universe(48, 2.0), 1_600, 0.3),
        LawTally::new(3, &x3, &PerfectLpFactory::for_universe(24, 3.0), 1_600, 0.6),
    ];

    // Interleave: every round touches every tenant, so the laws are
    // pinned while the neighbors are actively sampling.
    loop {
        let mut any = false;
        for law in laws.iter_mut() {
            if law.remaining == 0 {
                continue;
            }
            any = true;
            let take = law.remaining.min(400);
            law.remaining -= take;
            let ns = law.ns;
            law.tally(client.sample_many_ns(ns, take).unwrap());
        }
        if !any {
            break;
        }
    }
    for law in &laws {
        law.assert_law();
    }

    // Per-tenant stats are per-tenant: each namespace reports exactly its
    // own universe and stream.
    for (law, (n, support)) in laws.iter().zip([
        (32, x1.iter_nonzero().count()),
        (48, x2.iter_nonzero().count()),
        (24, x3.iter_nonzero().count()),
    ]) {
        let stats = client.stats_ns(law.ns).unwrap();
        assert_eq!(stats.universe, n as u64, "tenant {} universe", law.ns);
        assert_eq!(stats.support, support as u64, "tenant {} support", law.ns);
    }

    client.shutdown_server().unwrap();
    server.join();
}

/// Interleaved ingest into the neighbors never perturbs a tenant's draw
/// stream: every tenant on the shared server matches, draw for draw, a
/// single-tenant control server built from the identical engine
/// constructor and driven through the identical per-tenant call sequence.
#[test]
fn cross_tenant_isolation_is_draw_for_draw_against_controls() {
    let (server, mut client) = live_tenant_server();

    // One single-tenant control server per namespace: its *default*
    // engine is the same constructor the subject's spawner uses.
    let tenants = [1u64, 2, 3];
    let mut controls: Vec<(Server, Client)> = tenants
        .iter()
        .map(|&ns| {
            let control = pts_server::serve("127.0.0.1:0", tenant_engine(ns)).unwrap();
            let c = Client::connect(control.local_addr()).unwrap();
            (control, c)
        })
        .collect();
    for &ns in &tenants {
        client.create_namespace(ns).unwrap();
    }

    // Interleaved rounds: every round, each tenant ingests a fresh batch
    // and draws — on the shared server *and* on its control — with the
    // other tenants' traffic in between on the shared server only.
    let universes = [32usize, 48, 24];
    for round in 0..6u64 {
        for (k, &ns) in tenants.iter().enumerate() {
            let n = universes[k];
            let x = zipf_vector(n, 1.0 + 0.1 * k as f64, 12, 100 * round + ns);
            let batch = updates_of(&x);
            let accepted = client.ingest_batch_ns(ns, &batch).unwrap();
            assert_eq!(accepted, controls[k].1.ingest_batch(&batch).unwrap());

            let subject_draws = client.sample_many_ns(ns, 8).unwrap();
            let control_draws = controls[k].1.sample_many(8).unwrap();
            assert_eq!(
                subject_draws, control_draws,
                "tenant {ns} diverged from its control in round {round} — tenancy leaked"
            );
        }
    }

    // Closing state is identical too: mass, counters, snapshot.
    for (k, &ns) in tenants.iter().enumerate() {
        let subject = client.stats_ns(ns).unwrap();
        let control = controls[k].1.stats().unwrap();
        assert_eq!(subject.mass, control.mass, "tenant {ns} mass");
        assert_eq!(subject.updates, control.updates, "tenant {ns} updates");
        assert_eq!(subject.support, control.support, "tenant {ns} support");
        assert_eq!(
            client.snapshot_ns(ns).unwrap(),
            controls[k].1.snapshot().unwrap(),
            "tenant {ns} snapshot"
        );
    }

    client.shutdown_server().unwrap();
    for (control, mut c) in controls {
        c.shutdown_server().unwrap();
        control.join();
    }
    server.join();
}
