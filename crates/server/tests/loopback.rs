//! End-to-end loopback sessions: real TCP, real frames, real engine.
//!
//! The two headline pins, mirroring the engine's own acceptance tests
//! through the socket boundary:
//!
//! * **Sampling law** — draws served over the wire fit the ideal
//!   `G(x_i)/Σ_j G(x_j)` law by chi-squared, for both the L0 and the L2
//!   factory (the socket must be a transparent window onto the engine's
//!   perfect-sampling guarantee).
//! * **Checkpoint/restart** — a checkpoint pulled over the wire, restored
//!   into a *different* server process-worth of state, continues
//!   draw-for-draw identical to the original (the durable-snapshot
//!   contract of `checkpoint_restore.rs`, now spanning a kill).

use pts_engine::{
    ConcurrentEngine, EngineConfig, L0Factory, LpLe2Factory, SamplerFactory, ShardedEngine,
};
use pts_server::{serve, Client, ClientError};
use pts_stream::{FrequencyVector, Update};
use pts_util::protocol::ErrorCode;
use pts_util::stats::chi_square_test;

fn updates_of(x: &FrequencyVector) -> Vec<Update> {
    x.iter_nonzero().map(|(i, v)| Update::new(i, v)).collect()
}

#[test]
fn session_ingest_sample_stats_snapshot() {
    let engine = ConcurrentEngine::new(
        EngineConfig::new(64).shards(2).pool_size(2).seed(7),
        L0Factory::default(),
    );
    let server = serve("127.0.0.1:0", engine).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let accepted = client
        .ingest_batch(&[Update::new(3, 5), Update::new(17, -2), Update::new(40, 1)])
        .unwrap();
    assert_eq!(accepted, 3);

    let draw = client.sample().unwrap().expect("non-zero state samples");
    assert!([3, 17, 40].contains(&draw.index));

    let stats = client.stats().unwrap();
    assert_eq!(stats.updates, 3);
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.samples + stats.fails, 1);
    assert_eq!(stats.support, 3);
    assert_eq!(stats.mass, 3.0, "L0 mass is the support");

    let snapshot = client.snapshot().unwrap();
    assert_eq!(snapshot.entries(), &[(3, 5), (17, -2), (40, 1)]);

    // A second connection observes the same engine.
    let mut other = Client::connect(server.local_addr()).unwrap();
    assert_eq!(other.stats().unwrap().support, 3);

    client.shutdown_server().unwrap();
    server.join();
}

/// Draws through the socket obey the target law `G(x_i)/Σ G(x_j)` — the
/// chi-squared pin from `sharding_law.rs`, served over TCP.
fn law_through_socket<F>(x: &FrequencyVector, factory: F, trials: u64, max_fail_fraction: f64)
where
    F: SamplerFactory + pts_util::Encode + pts_util::Decode + Send + 'static,
    F::Sampler: pts_util::Encode + pts_util::Decode + Send + 'static,
{
    let weights: Vec<f64> = x.values().iter().map(|&v| factory.weight(v)).collect();
    let total: f64 = weights.iter().sum();
    let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();

    let engine = ConcurrentEngine::new(
        EngineConfig::new(x.n()).shards(2).pool_size(2).seed(11),
        factory,
    );
    let server = serve("127.0.0.1:0", engine).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ingest_batch(&updates_of(x)).unwrap();

    let mut counts = vec![0u64; x.n()];
    let mut fails = 0u64;
    // Batched draws: a few hundred per round trip, like a real consumer.
    let mut remaining = trials;
    while remaining > 0 {
        let take = remaining.min(500);
        for draw in client.sample_many(take).unwrap() {
            match draw {
                Some(s) => counts[s.index as usize] += 1,
                None => fails += 1,
            }
        }
        remaining -= take;
    }
    assert!(
        (fails as f64) < trials as f64 * max_fail_fraction,
        "fails {fails}/{trials}"
    );
    let chi = chi_square_test(&counts, &probs, 5.0);
    assert!(
        chi.p_value > 1e-4,
        "served law off: chi2 {:.2} p {:.6}",
        chi.statistic,
        chi.p_value
    );
    client.shutdown_server().unwrap();
    server.join();
}

#[test]
fn served_l0_law_matches_ideal() {
    let mut values = vec![0i64; 24];
    for (k, &i) in [1usize, 4, 7, 11, 13, 17, 20, 23].iter().enumerate() {
        values[i] = if k % 2 == 0 { 1 << k } else { -(3 + k as i64) };
    }
    law_through_socket(
        &FrequencyVector::from_values(values),
        L0Factory::default(),
        3_000,
        0.05,
    );
}

#[test]
fn served_l2_law_matches_ideal() {
    let x = FrequencyVector::from_values(vec![10, -20, 30, 5, 0, 15, -8, 12]);
    let factory = LpLe2Factory::for_universe(x.n(), 2.0);
    law_through_socket(&x, factory, 1_200, 0.25);
}

/// The acceptance scenario: ingest → sample → checkpoint → **kill** →
/// restore into a fresh server → identical draws thereafter.
#[test]
fn checkpoint_kill_restore_continues_identically() {
    let config = EngineConfig::new(128).shards(2).pool_size(2).seed(21);
    let factory = LpLe2Factory::for_universe(128, 2.0);

    let server_a = serve("127.0.0.1:0", ConcurrentEngine::new(config, factory)).unwrap();
    let mut client_a = Client::connect(server_a.local_addr()).unwrap();
    let x = pts_stream::gen::zipf_vector(128, 1.1, 60, 5);
    client_a.ingest_batch(&updates_of(&x)).unwrap();
    let _warmup = client_a.sample_many(3).unwrap(); // consume pool state

    // Pull the full engine state over the wire...
    let checkpoint = client_a.checkpoint().unwrap();
    // ...record what the original will serve next...
    let expected_draws = client_a.sample_many(20).unwrap();
    let expected_stats = client_a.stats().unwrap();
    // ...and kill it.
    client_a.shutdown_server().unwrap();
    server_a.join();

    // A fresh server hosting a *different* engine (sequential front-end,
    // different seed, nothing ingested) — the restore replaces all of it,
    // and checkpoints are front-end-agnostic by the S29 contract.
    let stand_in = ShardedEngine::new(config.seed(9999), factory);
    let server_b = serve("127.0.0.1:0", stand_in).unwrap();
    let mut client_b = Client::connect(server_b.local_addr()).unwrap();
    client_b.restore(&checkpoint).unwrap();

    let replay_draws = client_b.sample_many(20).unwrap();
    assert_eq!(
        replay_draws, expected_draws,
        "restored server diverged from the killed original"
    );
    let replay_stats = client_b.stats().unwrap();
    assert_eq!(replay_stats, expected_stats);
    client_b.shutdown_server().unwrap();
    server_b.join();
}

#[test]
fn out_of_universe_ingest_is_in_band_and_atomic() {
    let engine = ConcurrentEngine::new(
        EngineConfig::new(16).shards(2).pool_size(1).seed(3),
        L0Factory::default(),
    );
    let server = serve("127.0.0.1:0", engine).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // One bad index poisons the whole batch: nothing is applied, the
    // error is in-band (the engine would have panicked), and the
    // connection survives.
    let err = client
        .ingest_batch(&[Update::new(2, 1), Update::new(16, 1)])
        .unwrap_err();
    match err {
        ClientError::Server(e) => assert_eq!(e.code, ErrorCode::OutOfUniverse),
        other => panic!("wrong error kind: {other}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.updates, 0, "rejected batch must not partially apply");
    assert_eq!(client.ingest_batch(&[Update::new(2, 1)]).unwrap(), 1);
    client.shutdown_server().unwrap();
    server.join();
}

#[test]
fn restore_rejects_garbage_and_wrong_factory_in_band() {
    let config = EngineConfig::new(32).shards(1).pool_size(1).seed(4);
    let server = serve(
        "127.0.0.1:0",
        ShardedEngine::new(config, L0Factory::default()),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ingest_batch(&[Update::new(5, 2)]).unwrap();

    // Garbage bytes: in-band Malformed, engine untouched.
    let err = client.restore(&[0xDE, 0xAD, 0xBE, 0xEF]).unwrap_err();
    match err {
        ClientError::Server(e) => assert_eq!(e.code, ErrorCode::Malformed),
        other => panic!("wrong error kind: {other}"),
    }

    // A checkpoint from a *different factory type*: decodes as a frame but
    // fails the factory tag check — still in-band, engine still untouched.
    let mut foreign = Vec::new();
    ConcurrentEngine::new(config, LpLe2Factory::for_universe(32, 2.0))
        .checkpoint(&mut foreign)
        .unwrap();
    let err = client.restore(&foreign).unwrap_err();
    match err {
        ClientError::Server(e) => assert_eq!(e.code, ErrorCode::Malformed),
        other => panic!("wrong error kind: {other}"),
    }

    assert_eq!(client.stats().unwrap().support, 1, "state survived");
    client.shutdown_server().unwrap();
    server.join();
}

#[test]
fn concurrent_clients_all_land_their_updates() {
    let engine = ConcurrentEngine::new(
        EngineConfig::new(1 << 10).shards(4).pool_size(1).seed(8),
        L0Factory::default(),
    );
    let server = serve("127.0.0.1:0", engine).unwrap();
    let addr = server.local_addr();

    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // Disjoint coordinate ranges per client.
                for i in 0..64 {
                    client
                        .ingest_batch(&[Update::new(t * 256 + i, 1 + i as i64)])
                        .unwrap();
                }
                let s = client.sample().unwrap();
                assert!(s.is_some(), "well-populated engine must sample");
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.updates, 4 * 64);
    assert_eq!(stats.support, 4 * 64);
    client.shutdown_server().unwrap();
    server.join();
}

#[test]
fn shutdown_request_stops_the_accept_loop() {
    let engine = ShardedEngine::new(
        EngineConfig::new(16).shards(1).pool_size(1).seed(1),
        L0Factory::default(),
    );
    let server = serve("127.0.0.1:0", engine).unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.shutdown_server().unwrap();
    server.join();
    // The listener is gone: a fresh connect must fail (the port was
    // ephemeral, so nothing else is listening there).
    assert!(Client::connect(addr).is_err());
}
