//! Wire v4 multiplexing contract, pinned from the client's side against
//! **scripted** servers (hand-written frame scripts over a raw listener,
//! so response order and failure timing are exactly controlled) plus one
//! live pipelined run over a real server.
//!
//! The load-bearing pins:
//! * one connection sustains ≥ 16 concurrent in-flight requests and the
//!   demux resolves them correctly when the responses come back in
//!   **reverse** order (matched by id, not by arrival position);
//! * a recoverable in-band error resolves only its own request id — the
//!   other in-flight requests and the connection itself are unaffected;
//! * a fatal connection failure resolves **every** outstanding `Pending`
//!   with a connection error;
//! * `max_in_flight` backpressures `submit_*` instead of growing the
//!   demux table without bound.

use pts_engine::{ConcurrentEngine, EngineConfig, L0Factory};
use pts_server::{serve, Client, ClientConfig, ClientError};
use pts_stream::Update;
use pts_util::protocol::{
    read_request, write_response, ErrorCode, Response, ServiceError, ServiceStats,
};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A raw loopback listener running `script` against its first accepted
/// connection — a fake server whose response order is the test's choice.
fn scripted_server<F>(script: F) -> (SocketAddr, JoinHandle<()>)
where
    F: FnOnce(TcpStream) + Send + 'static,
{
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        script(stream);
    });
    (addr, handle)
}

/// A `Stats` response whose universe encodes `id`, so a test can prove a
/// response resolved the *right* request regardless of arrival order.
fn stats_marked(id: u64) -> Response {
    Response::Stats(ServiceStats {
        universe: 1000 + id,
        updates: 0,
        batches: 0,
        samples: 0,
        fails: 0,
        merges: 0,
        mass: 0.0,
        support: 0,
        requests_served: 0,
        uptime_secs: 0,
    })
}

/// The acceptance pin: 16 concurrent in-flight requests on one
/// connection, answered in **reverse** submission order, each resolving
/// to its own request's response.
#[test]
fn sixteen_in_flight_resolve_out_of_order_by_id() {
    const DEPTH: u64 = 16;
    let (addr, server) = scripted_server(move |mut stream| {
        // Collect the whole burst before answering anything…
        let mut ids = Vec::new();
        for _ in 0..DEPTH {
            let (id, _ns, _req) = read_request(&mut stream).unwrap();
            ids.push(id);
        }
        // …then answer strictly in reverse: the last-submitted request
        // completes first.
        for &id in ids.iter().rev() {
            write_response(id, &stats_marked(id), &mut stream).unwrap();
        }
    });
    let mut client = Client::connect(addr).unwrap();
    let mut pending = Vec::new();
    for _ in 0..DEPTH {
        pending.push(client.submit_stats().unwrap());
    }
    let ids: Vec<u64> = pending.iter().map(|p| p.id()).collect();
    assert_eq!(
        ids.len() as u64,
        DEPTH,
        "all {DEPTH} submissions must be in flight at once"
    );
    // Wait in *submission* order — the opposite of arrival order — and
    // check each handle got its own request's response.
    for (pending, id) in pending.into_iter().zip(ids) {
        let stats = pending.wait().unwrap();
        assert_eq!(
            stats.universe,
            1000 + id,
            "response for id {id} resolved the wrong handle"
        );
    }
    drop(client);
    server.join().unwrap();
}

/// A recoverable in-band error resolves only its own id: the requests
/// around it still succeed, on the same connection.
#[test]
fn recoverable_error_resolves_only_its_own_id() {
    let (addr, server) = scripted_server(|mut stream| {
        let mut ids = Vec::new();
        for _ in 0..3 {
            let (id, _ns, _req) = read_request(&mut stream).unwrap();
            ids.push(id);
        }
        // Fail the middle request in-band; answer its neighbors normally,
        // out of order for good measure.
        write_response(
            ids[1],
            &Response::Error(ServiceError::new(ErrorCode::Internal, "scripted failure")),
            &mut stream,
        )
        .unwrap();
        write_response(ids[2], &stats_marked(ids[2]), &mut stream).unwrap();
        write_response(ids[0], &stats_marked(ids[0]), &mut stream).unwrap();
    });
    let mut client = Client::connect(addr).unwrap();
    let first = client.submit_stats().unwrap();
    let second = client.submit_stats().unwrap();
    let third = client.submit_stats().unwrap();
    let (first_id, third_id) = (first.id(), third.id());

    let err = second.wait().expect_err("scripted failure must surface");
    match &err {
        ClientError::Server(e) => assert_eq!(e.code, ErrorCode::Internal),
        other => panic!("wanted in-band server error, got {other:?}"),
    }
    assert!(
        err.is_recoverable(),
        "an in-band error is scoped to its request"
    );

    assert_eq!(first.wait().unwrap().universe, 1000 + first_id);
    assert_eq!(third.wait().unwrap().universe, 1000 + third_id);
    drop(client);
    server.join().unwrap();
}

/// A connection-level failure (the peer dies mid-conversation) resolves
/// every outstanding `Pending` with a non-recoverable connection error.
#[test]
fn fatal_failure_resolves_all_pending() {
    let (addr, server) = scripted_server(|mut stream| {
        // Read the burst, answer nothing, drop the socket.
        for _ in 0..4 {
            let _ = read_request(&mut stream).unwrap();
        }
    });
    let mut client = Client::connect(addr).unwrap();
    let pending: Vec<_> = (0..4).map(|_| client.submit_stats().unwrap()).collect();
    for (i, p) in pending.into_iter().enumerate() {
        let err = p.wait().expect_err("dead peer must fail the request");
        assert!(
            !err.is_recoverable(),
            "request {i}: a connection failure is not recoverable, got {err:?}"
        );
    }
    // The connection is poisoned: new submissions fail immediately.
    assert!(client.submit_stats().is_err());
    server.join().unwrap();
}

/// `max_in_flight` backpressures: the (depth+1)-th submit blocks until a
/// response frees a slot. One-sided timing — a slow machine only makes
/// the measured wait longer.
#[test]
fn max_in_flight_backpressures_submit() {
    const HOLD: Duration = Duration::from_millis(200);
    let (addr, server) = scripted_server(|mut stream| {
        let (first, _, _) = read_request(&mut stream).unwrap();
        let (second, _, _) = read_request(&mut stream).unwrap();
        // Hold both slots hostage, then release one.
        std::thread::sleep(HOLD);
        write_response(first, &stats_marked(first), &mut stream).unwrap();
        let (third, _, _) = read_request(&mut stream).unwrap();
        write_response(second, &stats_marked(second), &mut stream).unwrap();
        write_response(third, &stats_marked(third), &mut stream).unwrap();
    });
    let config = ClientConfig::default().max_in_flight(2);
    let mut client = Client::connect_with(addr, &config).unwrap();
    let first = client.submit_stats().unwrap();
    let second = client.submit_stats().unwrap();
    let blocked_at = Instant::now();
    let third = client.submit_stats().unwrap(); // must wait for a slot
    assert!(
        blocked_at.elapsed() >= HOLD / 2,
        "third submit should have blocked at max_in_flight=2, returned in {:?}",
        blocked_at.elapsed()
    );
    first.wait().unwrap();
    second.wait().unwrap();
    third.wait().unwrap();
    drop(client);
    server.join().unwrap();
}

/// `Pending::wait_timeout` gives up cleanly: an expiry returns
/// `Ok(None)` without poisoning the connection — the late response is
/// absorbed as a stray, and later requests on the same connection still
/// resolve (including through `wait_timeout` itself).
#[test]
fn wait_timeout_expires_cleanly_and_connection_survives() {
    const HOLD: Duration = Duration::from_millis(200);
    let (addr, server) = scripted_server(move |mut stream| {
        let (slow, _, _) = read_request(&mut stream).unwrap();
        // Let the client's deadline expire before anything is answered.
        std::thread::sleep(HOLD);
        let (fast, _, _) = read_request(&mut stream).unwrap();
        // The expired request's response arrives late — it must be
        // swallowed as a stray, not resolve the later handle.
        write_response(slow, &stats_marked(slow), &mut stream).unwrap();
        write_response(fast, &stats_marked(fast), &mut stream).unwrap();
    });
    let mut client = Client::connect(addr).unwrap();
    let slow = client.submit_stats().unwrap();
    let started = Instant::now();
    assert!(
        slow.wait_timeout(Duration::from_millis(25))
            .unwrap()
            .is_none(),
        "no response inside the deadline must resolve to None"
    );
    assert!(
        started.elapsed() < HOLD,
        "wait_timeout must return at its own deadline, not the response's"
    );
    let fast = client.submit_stats().unwrap();
    let fast_id = fast.id();
    let stats = fast
        .wait_timeout(Duration::from_secs(5))
        .unwrap()
        .expect("an answered request resolves within a generous deadline");
    assert_eq!(stats.universe, 1000 + fast_id);
    drop(client);
    server.join().unwrap();
}

/// Pipelining against a **real** server: a burst of ingests and a burst
/// of sample fetches all in flight at once, every ack correct, totals
/// exactly right afterwards.
#[test]
fn live_pipelined_bursts_land_exactly() {
    let engine = ConcurrentEngine::new(
        EngineConfig::new(256).shards(2).pool_size(1).seed(21),
        L0Factory::default(),
    );
    let server = serve("127.0.0.1:0", engine).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // 32 single-update batches submitted before any ack is awaited.
    let pending: Vec<_> = (0..32)
        .map(|i| {
            client
                .submit_ingest_batch(&[Update::new(i as u64, i + 1)])
                .unwrap()
        })
        .collect();
    let accepted: u64 = pending.into_iter().map(|p| p.wait().unwrap()).sum();
    assert_eq!(accepted, 32, "every pipelined batch must ack exactly once");
    assert_eq!(client.stats().unwrap().updates, 32);

    // A mixed in-flight burst: samples and stats interleaved.
    let draws = client.submit_sample_many(8).unwrap();
    let stats = client.submit_stats().unwrap();
    let more = client.submit_sample_many(4).unwrap();
    assert_eq!(draws.wait().unwrap().len(), 8);
    assert_eq!(stats.wait().unwrap().updates, 32);
    assert_eq!(more.wait().unwrap().len(), 4);

    client.shutdown_server().unwrap();
    server.join();
}
