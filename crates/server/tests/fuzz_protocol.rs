//! Protocol fuzz against a **live** loopback server, in the style of
//! `wire_roundtrip.rs`: hostile bytes must yield clean in-band error
//! responses — never a panic, never a hang — and the connection must
//! remain usable whenever the stream is still at a frame boundary (the
//! normative recoverable/fatal split in `pts_util::protocol`).
//!
//! Recoverable (same connection keeps working): byte-soup payloads inside
//! a valid envelope, truncation at every prefix of a request body, of the
//! request-id varint itself, of the namespace varint, *and* of the trace
//! field, the reserved id 0, duplicate ids, unknown namespaces
//! (dropped-then-used included), response frames where requests belong,
//! oversized *inner* length prefixes, checksum flips, version bumps.
//! Fatal (error response, then the server closes that connection — and
//! only that connection): bad magic, envelope length over the service
//! cap.
//!
//! Wire v5: every request payload is `varint request_id ‖ varint
//! namespace ‖ trace ‖ tag ‖ body` (`trace := 0 | trace_id ‖
//! parent_span_id`), and the server echoes the id on the response — or
//! answers under the reserved id 0 when the failure is unattributable
//! (unreadable id, frame-level error). A readable id with an unreadable
//! namespace or trace field *is* attributable: the error echoes the id.

use pts_engine::{ConcurrentEngine, EngineConfig, L0Factory};
use pts_server::{serve, serve_with_spawner, Client, ClientError};
use pts_stream::Update;
use pts_util::protocol::{
    write_request_traced, ErrorCode, Request, Response, ServiceError, TraceContext,
    DEFAULT_NAMESPACE,
};
use pts_util::wire::{write_frame, Encode, WireWriter, KIND_REQUEST, WIRE_MAGIC, WIRE_VERSION};
use pts_util::Xoshiro256pp;

fn small_engine(seed: u64) -> ConcurrentEngine<L0Factory> {
    ConcurrentEngine::new(
        EngineConfig::new(64).shards(2).pool_size(1).seed(seed),
        L0Factory::default(),
    )
}

/// A live server over a small L0 engine, plus one connected client.
fn live_server() -> (pts_server::Server, Client) {
    let server = serve("127.0.0.1:0", small_engine(13)).unwrap();
    let client = Client::connect(server.local_addr()).unwrap();
    (server, client)
}

/// A live *multi-tenant* server (spawner attached), plus one client.
fn live_tenant_server() -> (pts_server::Server, Client) {
    let server = serve_with_spawner("127.0.0.1:0", small_engine(13), |ns| {
        small_engine(1000 + ns)
    })
    .unwrap();
    let client = Client::connect(server.local_addr()).unwrap();
    (server, client)
}

/// Frames `payload` as a well-formed `KIND_REQUEST` envelope (valid magic,
/// version, length, checksum) so only the *payload* is hostile.
fn enveloped(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    write_frame(KIND_REQUEST, payload, &mut out).unwrap();
    out
}

/// A v5 request payload — `varint id ‖ varint ns ‖ trace 0 ‖ body` —
/// inside a valid envelope, so only the *body* (or the id/namespace
/// values themselves) is hostile. The trace field is the untraced
/// marker; `traced_frame` below builds the traced flavor.
fn enveloped_v5(id: u64, ns: u64, body: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u64(id);
    w.put_u64(ns);
    w.put_u64(0); // untraced
    let mut payload = w.as_bytes().to_vec();
    payload.extend_from_slice(body);
    enveloped(&payload)
}

/// A well-formed *traced* request frame: the v5 trace field populated
/// with `trace_id ‖ parent_span_id`.
fn traced_frame(id: u64, ns: u64, trace: TraceContext, request: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    write_request_traced(id, ns, Some(trace), request, &mut out).unwrap();
    out
}

/// Asserts the next response is an in-band error of `code` carried under
/// `id` (0 = the failure was unattributable).
fn expect_error(client: &mut Client, id: u64, code: ErrorCode, context: &str) {
    match client.recv_response() {
        Ok((got_id, Response::Error(ServiceError { code: got, .. }))) => {
            assert_eq!(got, code, "{context}: wrong error code");
            assert_eq!(got_id, id, "{context}: wrong response id");
        }
        other => panic!("{context}: wanted error response, got {other:?}"),
    }
}

/// Asserts the connection still answers a real request correctly.
fn assert_usable(client: &mut Client, context: &str) {
    let stats = client.stats().unwrap_or_else(|e| {
        panic!("{context}: connection unusable afterwards: {e}");
    });
    assert_eq!(stats.updates, 0, "{context}: fuzz must not mutate state");
}

#[test]
fn byte_soup_payloads_yield_errors_and_connection_survives() {
    let (server, mut client) = live_server();
    let mut rng = Xoshiro256pp::new(0xF00D);
    for round in 0..200 {
        let len = (rng.next_u64() % 40) as usize;
        let soup: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        // Skip the rare soup that *is* a valid request body (e.g. a lone
        // Stats tag): the point is malformed bodies under a sound id.
        if pts_util::wire::Decode::from_wire_bytes(&soup)
            .map(|_: Request| ())
            .is_ok()
        {
            continue;
        }
        client
            .send_raw(&enveloped_v5(round + 1, DEFAULT_NAMESPACE, &soup))
            .unwrap();
        expect_error(
            &mut client,
            round + 1,
            ErrorCode::Malformed,
            &format!("soup {round}"),
        );
    }
    assert_usable(&mut client, "after 200 soup rounds");
    client.shutdown_server().unwrap();
    server.join();
}

#[test]
fn truncation_at_every_prefix_yields_errors_on_one_connection() {
    let (server, mut client) = live_server();
    let request = Request::IngestBatch(vec![(3, 5), (900, -2), (17, 1 << 40)]);
    let payload = request.to_wire_bytes().unwrap();
    // Every proper prefix of this body is malformed (the update count
    // promises more pairs than the bytes deliver), each under a sound id
    // inside a fresh valid envelope: error response under that id every
    // time, same connection throughout.
    for cut in 0..payload.len() {
        let id = cut as u64 + 1;
        client
            .send_raw(&enveloped_v5(id, DEFAULT_NAMESPACE, &payload[..cut]))
            .unwrap();
        expect_error(&mut client, id, ErrorCode::Malformed, &format!("cut {cut}"));
    }
    assert_usable(&mut client, "after truncation sweep");
    client.shutdown_server().unwrap();
    server.join();
}

/// The header twin of the body-truncation sweep: truncation at every
/// prefix of the *request-id varint itself*. The id is unreadable, so the
/// error comes back under the reserved id 0 — and the connection
/// survives.
#[test]
fn truncation_at_every_prefix_of_the_id_field_yields_id_zero_errors() {
    let (server, mut client) = live_server();
    // u64::MAX is the maximal varint: ten bytes, every one continuation-
    // flagged except the last — so every proper prefix is an unterminated
    // varint.
    let mut w = WireWriter::new();
    w.put_u64(u64::MAX);
    let id_bytes = w.as_bytes().to_vec();
    assert_eq!(id_bytes.len(), 10, "u64::MAX must be the 10-byte varint");
    for cut in 0..id_bytes.len() {
        client.send_raw(&enveloped(&id_bytes[..cut])).unwrap();
        expect_error(
            &mut client,
            0,
            ErrorCode::Malformed,
            &format!("id cut {cut}"),
        );
    }
    // The full maximal id with nothing after it is a readable id whose
    // *namespace* is missing: attributable, so the error echoes u64::MAX.
    client.send_raw(&enveloped(&id_bytes)).unwrap();
    expect_error(&mut client, u64::MAX, ErrorCode::Malformed, "empty body");
    assert_usable(&mut client, "after id-truncation sweep");
    client.shutdown_server().unwrap();
    server.join();
}

/// The reserved id 0 on a request — even one whose body is a perfectly
/// valid `Stats` — is rejected as unattributable (the error answers under
/// id 0) and the connection survives.
#[test]
fn request_id_zero_is_rejected_in_band() {
    let (server, mut client) = live_server();
    let body = Request::Stats.to_wire_bytes().unwrap();
    client
        .send_raw(&enveloped_v5(0, DEFAULT_NAMESPACE, &body))
        .unwrap();
    expect_error(&mut client, 0, ErrorCode::Malformed, "id 0 request");
    assert_usable(&mut client, "after id-0 request");
    client.shutdown_server().unwrap();
    server.join();
}

/// The server does not police id reuse: two in-flight requests under the
/// same id are both answered (under that id, in submission order), and
/// interleaved distinct-id pipelining echoes every id exactly once.
/// Disambiguating duplicates is the client's problem — the typed client
/// never issues them.
#[test]
fn duplicate_and_interleaved_request_ids_are_echoed() {
    let (server, mut client) = live_server();

    // Two Stats under the same id, written back-to-back before reading.
    let mut twice = Vec::new();
    pts_util::protocol::write_request(7, DEFAULT_NAMESPACE, &Request::Stats, &mut twice).unwrap();
    pts_util::protocol::write_request(7, DEFAULT_NAMESPACE, &Request::Stats, &mut twice).unwrap();
    client.send_raw(&twice).unwrap();
    for round in 0..2 {
        match client.recv_response() {
            Ok((7, Response::Stats(_))) => {}
            other => panic!("duplicate id round {round}: got {other:?}"),
        }
    }

    // A pipelined burst of distinct ids: every id comes back exactly once.
    let ids: Vec<u64> = (100..132).collect();
    let mut burst = Vec::new();
    for &id in &ids {
        pts_util::protocol::write_request(id, DEFAULT_NAMESPACE, &Request::Stats, &mut burst)
            .unwrap();
    }
    client.send_raw(&burst).unwrap();
    let mut seen = Vec::new();
    for _ in &ids {
        match client.recv_response() {
            Ok((id, Response::Stats(_))) => seen.push(id),
            other => panic!("interleaved burst: got {other:?}"),
        }
    }
    seen.sort_unstable();
    assert_eq!(seen, ids, "every pipelined id must be echoed exactly once");

    assert_usable(&mut client, "after id fuzz");
    client.shutdown_server().unwrap();
    server.join();
}

#[test]
fn oversized_inner_length_prefix_is_rejected_without_allocation() {
    let (server, mut client) = live_server();
    // An IngestBatch whose count varint claims ~2^62 updates backed by
    // two bytes: the allocation-capped decode must reject it in-band.
    let mut w = WireWriter::new();
    w.put_u8(0x01); // IngestBatch tag
    w.put_u64(1 << 62);
    w.put_u8(0x00);
    w.put_u8(0x00);
    client
        .send_raw(&enveloped_v5(1, DEFAULT_NAMESPACE, w.as_bytes()))
        .unwrap();
    expect_error(&mut client, 1, ErrorCode::Malformed, "oversized count");

    // Same attack through the Restore blob length.
    let mut w = WireWriter::new();
    w.put_u8(0x06); // Restore tag
    w.put_u64(u64::MAX); // blob "length"
    client
        .send_raw(&enveloped_v5(2, DEFAULT_NAMESPACE, w.as_bytes()))
        .unwrap();
    expect_error(&mut client, 2, ErrorCode::Malformed, "oversized blob");

    assert_usable(&mut client, "after oversized-length attacks");
    client.shutdown_server().unwrap();
    server.join();
}

#[test]
fn checksum_flip_version_bump_and_wrong_kind_are_recoverable() {
    let (server, mut client) = live_server();

    let mut good = Vec::new();
    pts_util::protocol::write_request(1, DEFAULT_NAMESPACE, &Request::Stats, &mut good).unwrap();

    // Flip each payload/checksum byte in turn: every flip is caught by
    // the checksum and answered under id 0 (the frame can't be trusted,
    // its id included), connection intact. (The frame is magic(4) ‖
    // version ‖ kind ‖ len, so payload + checksum start at offset 7;
    // flipping the *length* byte destroys framing itself and is fatal by
    // design, and the version byte is exercised separately below.)
    for i in 7..good.len() {
        let mut corrupt = good.clone();
        corrupt[i] ^= 0x40;
        client.send_raw(&corrupt).unwrap();
        expect_error(&mut client, 0, ErrorCode::Malformed, &format!("flip {i}"));
    }

    // Unknown envelope version.
    let mut bumped = good.clone();
    bumped[4] = WIRE_VERSION + 1;
    client.send_raw(&bumped).unwrap();
    expect_error(&mut client, 0, ErrorCode::Malformed, "version bump");

    // A response frame where a request belongs — including a "response"
    // to an id this connection never issued. The kind check rejects it
    // before any id is looked at.
    let mut as_response = Vec::new();
    pts_util::protocol::write_response(0xDEAD, &Response::Restored, &mut as_response).unwrap();
    client.send_raw(&as_response).unwrap();
    expect_error(&mut client, 0, ErrorCode::Malformed, "wrong kind");

    assert_usable(&mut client, "after framing corruption sweep");
    client.shutdown_server().unwrap();
    server.join();
}

/// The no-silent-work rule, exercised as raw hostile frames: an empty
/// `IngestBatch` and a zero `Sample` count are in-band recoverable
/// errors, never silently-accepted no-ops — and the connection survives.
#[test]
fn empty_batch_and_zero_sample_count_are_in_band_errors() {
    let (server, mut client) = live_server();

    // IngestBatch with count 0 (tag 0x01, varint 0).
    client
        .send_raw(&enveloped_v5(1, DEFAULT_NAMESPACE, &[0x01, 0x00]))
        .unwrap();
    expect_error(&mut client, 1, ErrorCode::Malformed, "empty ingest batch");

    // Sample with count 0 (tag 0x02, varint 0).
    client
        .send_raw(&enveloped_v5(2, DEFAULT_NAMESPACE, &[0x02, 0x00]))
        .unwrap();
    expect_error(&mut client, 2, ErrorCode::Malformed, "zero sample count");

    // The typed client surfaces the same rejection in-band.
    match client.ingest_batch(&[]) {
        Err(ClientError::Server(e)) => assert_eq!(e.code, ErrorCode::Malformed),
        other => panic!("empty batch must be a server error, got {other:?}"),
    }

    assert_usable(&mut client, "after no-op-work rejections");
    client.shutdown_server().unwrap();
    server.join();
}

/// The `Stats` response carries the engine's universe (what the cluster
/// coordinator validates slice assignments against), and its decoder
/// rejects truncation at every prefix — the response-side twin of the
/// request fuzz above.
#[test]
fn stats_response_reports_universe_and_rejects_truncation() {
    let (server, mut client) = live_server();
    let stats = client.stats().unwrap();
    assert_eq!(stats.universe, 64, "served universe must cross the wire");

    // Client-side adversarial safety: every proper prefix of a real
    // Stats response payload must error, never panic or misdecode.
    let payload = Response::Stats(stats).to_wire_bytes().unwrap();
    for cut in 0..payload.len() {
        assert!(
            <Response as pts_util::wire::Decode>::from_wire_bytes(&payload[..cut]).is_err(),
            "stats cut at {cut} decoded"
        );
    }

    // And the connection still serves the cluster's scatter path.
    assert_eq!(client.stats().unwrap().universe, 64);
    client.shutdown_server().unwrap();
    server.join();
}

#[test]
fn bad_magic_gets_an_error_then_a_clean_close_and_server_survives() {
    let (server, mut client) = live_server();

    // Raw soup on the wire (no envelope): framing is unrecoverable. The
    // server still answers in-band (under id 0 — no id ever arrived) —
    // then closes this connection only.
    client.send_raw(b"GARBAGE GARBAGE GARBAGE!").unwrap();
    expect_error(&mut client, 0, ErrorCode::Malformed, "raw soup");
    // The connection is now closed: the next round trip fails cleanly.
    assert!(matches!(
        client.stats(),
        Err(ClientError::Io(_) | ClientError::Wire(_))
    ));

    // The server itself is fine: fresh connections work.
    let mut fresh = Client::connect(server.local_addr()).unwrap();
    assert_eq!(fresh.ingest_batch(&[Update::new(1, 1)]).unwrap(), 1);
    fresh.shutdown_server().unwrap();
    server.join();
}

#[test]
fn envelope_length_over_cap_is_too_large_then_close() {
    let (server, mut client) = live_server();

    // magic | version | kind | len = MAX_FRAME_BYTES + 1 — rejected from
    // the length field alone, before any "payload" is read.
    let mut frame = Vec::new();
    frame.extend_from_slice(&WIRE_MAGIC);
    frame.push(WIRE_VERSION);
    frame.push(KIND_REQUEST);
    let mut w = WireWriter::new();
    w.put_u64(pts_util::protocol::MAX_FRAME_BYTES + 1);
    frame.extend_from_slice(w.as_bytes());
    client.send_raw(&frame).unwrap();
    expect_error(&mut client, 0, ErrorCode::TooLarge, "over-cap length");
    assert!(matches!(
        client.stats(),
        Err(ClientError::Io(_) | ClientError::Wire(_))
    ));

    let mut fresh = Client::connect(server.local_addr()).unwrap();
    assert_usable(&mut fresh, "server after over-cap frame");
    fresh.shutdown_server().unwrap();
    server.join();
}

/// An unknown namespace is an in-band *recoverable* error: answered under
/// the request's own id with `ErrorCode::UnknownNamespace`, connection
/// intact — both as raw frames and through the typed client. Addressing a
/// namespace never creates it as a side effect.
#[test]
fn unknown_namespace_is_in_band_recoverable() {
    let (server, mut client) = live_server();

    // Raw frame: Stats addressed to a namespace nobody created.
    let body = Request::Stats.to_wire_bytes().unwrap();
    client.send_raw(&enveloped_v5(9, 424242, &body)).unwrap();
    expect_error(
        &mut client,
        9,
        ErrorCode::UnknownNamespace,
        "raw unknown ns",
    );

    // Typed client: the same rejection surfaces as a recoverable server
    // error, for read-only and mutating kinds alike.
    let err = client.stats_ns(77).expect_err("stats on unknown ns");
    match &err {
        ClientError::Server(e) => assert_eq!(e.code, ErrorCode::UnknownNamespace),
        other => panic!("wanted UnknownNamespace, got {other:?}"),
    }
    assert!(
        err.is_recoverable(),
        "an unknown namespace is scoped to its request"
    );
    let err = client
        .ingest_batch_ns(77, &[Update::new(1, 1)])
        .expect_err("ingest on unknown ns");
    match &err {
        ClientError::Server(e) => assert_eq!(e.code, ErrorCode::UnknownNamespace),
        other => panic!("wanted UnknownNamespace, got {other:?}"),
    }

    assert_usable(&mut client, "after unknown-namespace probes");
    client.shutdown_server().unwrap();
    server.join();
}

/// Truncation at every prefix of the *namespace varint*: the id before it
/// was readable, so — unlike id truncation — every error is answered
/// under the request's own id, and the connection survives.
#[test]
fn truncation_at_every_prefix_of_the_namespace_field_echoes_the_id() {
    let (server, mut client) = live_server();
    // u64::MAX is the maximal varint: ten bytes, every proper prefix an
    // unterminated varint.
    let mut w = WireWriter::new();
    w.put_u64(u64::MAX);
    let ns_bytes = w.as_bytes().to_vec();
    assert_eq!(ns_bytes.len(), 10, "u64::MAX must be the 10-byte varint");
    for cut in 0..ns_bytes.len() {
        let id = cut as u64 + 1;
        let mut w = WireWriter::new();
        w.put_u64(id);
        let mut payload = w.as_bytes().to_vec();
        payload.extend_from_slice(&ns_bytes[..cut]);
        client.send_raw(&enveloped(&payload)).unwrap();
        expect_error(
            &mut client,
            id,
            ErrorCode::Malformed,
            &format!("ns cut {cut}"),
        );
    }
    // The full namespace with nothing after it is a readable header whose
    // *body* is missing: still Malformed under the id — not
    // UnknownNamespace, because the request never decoded.
    let mut w = WireWriter::new();
    w.put_u64(99);
    let mut payload = w.as_bytes().to_vec();
    payload.extend_from_slice(&ns_bytes);
    client.send_raw(&enveloped(&payload)).unwrap();
    expect_error(&mut client, 99, ErrorCode::Malformed, "empty body after ns");
    assert_usable(&mut client, "after ns-truncation sweep");
    client.shutdown_server().unwrap();
    server.join();
}

/// Id 0 combined with every namespace flavor — default, unknown, maximal
/// — is rejected under id 0 before the namespace is even considered, and
/// a `CreateNamespace` under id 0 creates nothing.
#[test]
fn request_id_zero_wins_over_namespace_errors() {
    let (server, mut client) = live_tenant_server();
    let body = Request::Stats.to_wire_bytes().unwrap();
    for ns in [DEFAULT_NAMESPACE, 424242, u64::MAX] {
        client.send_raw(&enveloped_v5(0, ns, &body)).unwrap();
        expect_error(
            &mut client,
            0,
            ErrorCode::Malformed,
            &format!("id 0 ns {ns}"),
        );
    }
    let create = Request::CreateNamespace.to_wire_bytes().unwrap();
    client.send_raw(&enveloped_v5(0, 31, &create)).unwrap();
    expect_error(&mut client, 0, ErrorCode::Malformed, "id 0 create");
    assert_eq!(
        client.list_namespaces().unwrap(),
        vec![DEFAULT_NAMESPACE],
        "a dead-on-arrival create must not leave a tenant behind"
    );
    assert_usable(&mut client, "after id-0/namespace sweep");
    client.shutdown_server().unwrap();
    server.join();
}

/// Truncation at every prefix of the *trace field* (wire v5): the id
/// before it was readable, so every error is answered under the
/// request's own id — and the connection survives, because each hostile
/// frame is still a sound envelope (the stream stays at a frame
/// boundary).
#[test]
fn truncation_at_every_prefix_of_the_trace_field_echoes_the_id() {
    let (server, mut client) = live_server();
    // A maximal trace field: trace_id and parent_span_id both u64::MAX,
    // ten continuation-flagged bytes each — every proper prefix either
    // tears a varint or loses the parent outright.
    let mut w = WireWriter::new();
    w.put_u64(u64::MAX);
    w.put_u64(u64::MAX);
    let trace_bytes = w.as_bytes().to_vec();
    assert_eq!(trace_bytes.len(), 20, "maximal trace must be 20 bytes");
    for cut in 0..trace_bytes.len() {
        let id = cut as u64 + 1;
        let mut w = WireWriter::new();
        w.put_u64(id);
        w.put_u64(DEFAULT_NAMESPACE);
        let mut payload = w.as_bytes().to_vec();
        payload.extend_from_slice(&trace_bytes[..cut]);
        client.send_raw(&enveloped(&payload)).unwrap();
        expect_error(
            &mut client,
            id,
            ErrorCode::Malformed,
            &format!("trace cut {cut}"),
        );
    }
    // The full trace field with nothing after it is a readable header
    // whose *body* is missing: still Malformed, still under the id.
    let mut w = WireWriter::new();
    w.put_u64(99);
    w.put_u64(DEFAULT_NAMESPACE);
    let mut payload = w.as_bytes().to_vec();
    payload.extend_from_slice(&trace_bytes);
    client.send_raw(&enveloped(&payload)).unwrap();
    expect_error(
        &mut client,
        99,
        ErrorCode::Malformed,
        "empty body after trace",
    );
    assert_usable(&mut client, "after trace-truncation sweep");
    client.shutdown_server().unwrap();
    server.join();
}

/// The trace field composes with **every** request tag: a populated
/// `trace_id ‖ parent_span_id` in front of each request kind decodes and
/// dispatches exactly like its untraced twin — no kind is allowed to
/// misparse the trace bytes as part of its body.
#[test]
fn trace_field_rides_every_request_kind() {
    let (server, mut client) = live_tenant_server();
    let ctx = TraceContext {
        trace_id: 0xDECAF,
        parent_span_id: 7,
    };
    let checkpoint = client.checkpoint().unwrap();
    let script: Vec<(u64, u64, Request)> = vec![
        (1, 9, Request::CreateNamespace),
        (2, 9, Request::IngestBatch(vec![(3, 5), (9, -2)])),
        (3, 9, Request::Sample { count: 2 }),
        (4, 9, Request::Snapshot),
        (5, 9, Request::Stats),
        (6, 9, Request::Checkpoint),
        (7, DEFAULT_NAMESPACE, Request::Restore(checkpoint)),
        (8, DEFAULT_NAMESPACE, Request::ListNamespaces),
        (9, 9, Request::DropNamespace),
    ];
    for (id, ns, request) in script {
        client
            .send_raw(&traced_frame(id, ns, ctx, &request))
            .unwrap();
        match client.recv_response() {
            Ok((got_id, Response::Error(e))) => {
                panic!("traced {request:?} (id {id}) errored under {got_id}: {e:?}")
            }
            Ok((got_id, _)) => assert_eq!(got_id, id, "traced {request:?}: wrong response id"),
            Err(e) => panic!("traced {request:?} (id {id}) failed: {e}"),
        }
    }
    assert_usable(&mut client, "after traced sweep of every kind");
    client.shutdown_server().unwrap();
    server.join();
}

/// Untraced and traced requests interleave freely on one connection: a
/// pipelined burst alternating the two flavors echoes every id exactly
/// once, all Stats, nothing cross-resolved.
#[test]
fn untraced_and_traced_requests_interleave_on_one_connection() {
    let (server, mut client) = live_server();
    let ids: Vec<u64> = (1..=16).collect();
    let mut burst = Vec::new();
    for &id in &ids {
        if id % 2 == 0 {
            let ctx = TraceContext {
                trace_id: 0x1000 + id,
                parent_span_id: id,
            };
            write_request_traced(
                id,
                DEFAULT_NAMESPACE,
                Some(ctx),
                &Request::Stats,
                &mut burst,
            )
            .unwrap();
        } else {
            pts_util::protocol::write_request(id, DEFAULT_NAMESPACE, &Request::Stats, &mut burst)
                .unwrap();
        }
    }
    client.send_raw(&burst).unwrap();
    let mut seen = Vec::new();
    for _ in &ids {
        match client.recv_response() {
            Ok((id, Response::Stats(_))) => seen.push(id),
            other => panic!("interleaved trace burst: got {other:?}"),
        }
    }
    seen.sort_unstable();
    assert_eq!(
        seen, ids,
        "every interleaved id must be echoed exactly once"
    );
    assert_usable(&mut client, "after traced/untraced interleave");
    client.shutdown_server().unwrap();
    server.join();
}

/// Drop-then-use, sequenced and raced. Sequenced on one connection the
/// outcome is deterministic (per-connection FIFO): requests before the
/// drop land, requests after answer `UnknownNamespace`, and recreating
/// the namespace yields a *fresh* engine. Raced from a second connection
/// the use lands either before or after the drop — both in-band, never a
/// panic or a poisoned connection.
#[test]
fn drop_then_use_is_unknown_namespace_and_race_stays_in_band() {
    let (server, mut client) = live_tenant_server();

    client.create_namespace(5).unwrap();
    assert_eq!(client.ingest_batch_ns(5, &[Update::new(3, 5)]).unwrap(), 1);

    // Pipelined on one connection: ingest, drop, ingest — FIFO makes the
    // first land and the second die.
    let before = client
        .submit_ingest_batch_ns(5, &[Update::new(4, 1)])
        .unwrap();
    let dropped = client.submit_drop_namespace(5).unwrap();
    let after = client
        .submit_ingest_batch_ns(5, &[Update::new(9, 1)])
        .unwrap();
    assert_eq!(before.wait().unwrap(), 1, "pre-drop request must land");
    dropped.wait().unwrap();
    let err = after.wait().expect_err("post-drop request must fail");
    match &err {
        ClientError::Server(e) => assert_eq!(e.code, ErrorCode::UnknownNamespace),
        other => panic!("wanted UnknownNamespace, got {other:?}"),
    }
    assert!(
        err.is_recoverable(),
        "drop-then-use is scoped to its request"
    );

    // Recreate: the tenant comes back *empty* (a fresh spawner build, not
    // the dropped engine).
    client.create_namespace(5).unwrap();
    assert_eq!(
        client.stats_ns(5).unwrap().updates,
        0,
        "recreate must yield a fresh engine"
    );

    // Race from a second connection: landing order is genuinely
    // nondeterministic, but every outcome is in-band and both connections
    // survive.
    let mut racer = Client::connect(server.local_addr()).unwrap();
    for round in 0..20u64 {
        let ns = 100 + round;
        client.create_namespace(ns).unwrap();
        let use_pending = racer
            .submit_ingest_batch_ns(ns, &[Update::new(1, 1)])
            .unwrap();
        let drop_pending = client.submit_drop_namespace(ns).unwrap();
        match use_pending.wait() {
            Ok(1) => {}
            Err(ClientError::Server(e)) => {
                assert_eq!(e.code, ErrorCode::UnknownNamespace, "round {round}");
            }
            other => panic!("round {round}: raced use must land or miss in-band, got {other:?}"),
        }
        drop_pending.wait().unwrap();
    }
    assert_usable(&mut racer, "racer after drop races");
    assert_usable(&mut client, "after drop races");
    client.shutdown_server().unwrap();
    server.join();
}
