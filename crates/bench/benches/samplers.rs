//! Criterion micro-benchmarks: ingest and query cost of every sampler.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pts_core::{
    ApproxLpParams, ApproxLpSampler, PerfectLpParams, PerfectLpSampler, RejectionGSampler,
};
use pts_samplers::{
    L0Params, LpLe2Params, PerfectL0Sampler, PerfectLpLe2Sampler, TurnstileSampler,
};
use pts_stream::gen::zipf_vector;
use pts_stream::FrequencyVector;

const N: usize = 256;

fn workload() -> FrequencyVector {
    zipf_vector(N, 1.1, 200, 77)
}

fn bench_ingest<S: TurnstileSampler>(c: &mut Criterion, name: &str, mk: impl Fn() -> S) {
    let x = workload();
    c.bench_function(name, |b| {
        b.iter_batched_ref(&mk, |s| s.ingest_vector(&x), BatchSize::SmallInput)
    });
}

fn bench_query<S: TurnstileSampler>(c: &mut Criterion, name: &str, mk: impl Fn() -> S) {
    let x = workload();
    c.bench_function(name, |b| {
        b.iter_batched_ref(
            || {
                let mut s = mk();
                s.ingest_vector(&x);
                s
            },
            |s| std::hint::black_box(s.sample()),
            BatchSize::SmallInput,
        )
    });
}

fn sampler_ingest(c: &mut Criterion) {
    bench_ingest(c, "l0/ingest n=256", || {
        PerfectL0Sampler::new(N, L0Params::default(), 1)
    });
    bench_ingest(c, "l2_perfect/ingest n=256", || {
        PerfectLpLe2Sampler::new(N, LpLe2Params::for_universe(N, 2.0), 2)
    });
    bench_ingest(c, "approx_lp/ingest n=256", || {
        ApproxLpSampler::new(N, ApproxLpParams::for_universe(N, 3.0, 0.3), 3)
    });
    bench_ingest(c, "g_log/ingest n=256", || {
        RejectionGSampler::log_sampler(N, 1000, 4)
    });
    // The heavyweight: one full perfect Lp (p>2) sampler.
    bench_ingest(c, "perfect_lp3/ingest n=256", || {
        PerfectLpSampler::new(N, PerfectLpParams::for_universe(N, 3.0), 5)
    });
}

fn sampler_query(c: &mut Criterion) {
    bench_query(c, "l0/sample n=256", || {
        PerfectL0Sampler::new(N, L0Params::default(), 11)
    });
    bench_query(c, "l2_perfect/sample n=256", || {
        PerfectLpLe2Sampler::new(N, LpLe2Params::for_universe(N, 2.0), 12)
    });
    bench_query(c, "approx_lp/sample n=256", || {
        ApproxLpSampler::new(N, ApproxLpParams::for_universe(N, 3.0, 0.3), 13)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = sampler_ingest, sampler_query
}
criterion_main!(benches);
