//! Criterion micro-benchmarks: per-update and query cost of every sketch.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pts_sketch::{
    AmsF2, CountSketch, CountSketchParams, DyadicHeavyHitters, FpMaxStab, FpMaxStabParams,
    FpTaylor, FpTaylorParams, GaussianL2, LinearSketch, ModCountSketch, SparseRecovery,
};
use pts_util::Xoshiro256pp;

const N: usize = 4096;

fn updates(count: usize, seed: u64) -> Vec<(u64, f64)> {
    let mut rng = Xoshiro256pp::new(seed);
    (0..count)
        .map(|_| {
            (
                rng.next_below(N as u64),
                rng.next_sign() as f64 * (1 + rng.next_below(40)) as f64,
            )
        })
        .collect()
}

fn bench_updates<S: LinearSketch>(c: &mut Criterion, name: &str, mk: impl Fn() -> S) {
    let ups = updates(1024, 7);
    c.bench_function(name, |b| {
        b.iter_batched_ref(
            &mk,
            |s| {
                for &(i, d) in &ups {
                    s.update(i, d);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn sketch_updates(c: &mut Criterion) {
    bench_updates(c, "countsketch/update x1024", || {
        CountSketch::new(
            CountSketchParams {
                rows: 5,
                buckets: 256,
            },
            1,
        )
    });
    bench_updates(c, "mod_countsketch/update x1024", || {
        ModCountSketch::new(5, 256, 2)
    });
    bench_updates(c, "ams_f2/update x1024", || AmsF2::new(5, 8, 3));
    bench_updates(c, "gaussian_l2/update x1024", || GaussianL2::new(15, 4));
    bench_updates(c, "fp_maxstab/update x1024", || {
        FpMaxStab::new(N, FpMaxStabParams::for_universe(N, 3.0), 5)
    });
    bench_updates(c, "fp_taylor/update x1024", || {
        FpTaylor::new(N, FpTaylorParams::for_universe(N, 3.0), 6)
    });
    bench_updates(c, "dyadic_hh/update x1024", || {
        DyadicHeavyHitters::new(
            N,
            CountSketchParams {
                rows: 5,
                buckets: 64,
            },
            7,
        )
    });
    bench_updates(c, "sparse_recovery/update x1024", || {
        SparseRecovery::new(12, 4, 8)
    });
}

fn sketch_queries(c: &mut Criterion) {
    let ups = updates(4096, 9);
    let mut cs = CountSketch::new(
        CountSketchParams {
            rows: 5,
            buckets: 256,
        },
        10,
    );
    for &(i, d) in &ups {
        cs.update(i, d);
    }
    c.bench_function("countsketch/decode_all n=4096", |b| {
        b.iter(|| std::hint::black_box(cs.decode_all(N)))
    });
    let mut hh = DyadicHeavyHitters::new(
        N,
        CountSketchParams {
            rows: 5,
            buckets: 64,
        },
        11,
    );
    for &(i, d) in &ups {
        hh.update(i, d);
    }
    c.bench_function("dyadic_hh/argmax n=4096", |b| {
        b.iter(|| std::hint::black_box(hh.argmax(16)))
    });
    let mut sr = SparseRecovery::new(12, 4, 12);
    for k in 0..8u64 {
        sr.update_int(k * 37, (k + 1) as i64);
    }
    c.bench_function("sparse_recovery/recover s=8", |b| {
        b.iter(|| std::hint::black_box(sr.recover()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200));
    targets = sketch_updates, sketch_queries
}
criterion_main!(benches);
