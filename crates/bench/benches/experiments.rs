//! Criterion wrappers over the experiment harness: one tracked benchmark
//! per table/figure so `cargo bench` regenerates every experiment (quick
//! mode) under a stable performance baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use pts_bench::registry;

fn experiment_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("reproduce");
    // Experiment runners are minutes-scale; sample each once per iteration
    // with a tiny sample count — criterion still tracks regressions.
    group.sample_size(10);
    for e in registry() {
        // Heavy distribution experiments are exercised by the `reproduce`
        // binary; here we keep the cheap structural ones under cargo bench.
        if !matches!(e.id, "e2" | "e5" | "e6") {
            continue;
        }
        group.bench_function(e.id, |b| b.iter(|| std::hint::black_box((e.run)(true))));
    }
    group.finish();
}

criterion_group!(benches, experiment_suite);
criterion_main!(benches);
