//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce                    # run every experiment in quick mode
//! reproduce e1 e4 a1           # run a subset
//! reproduce --full             # full trial counts (the EXPERIMENTS.md record)
//! reproduce --list             # list experiment ids
//! reproduce --json <dir> s1 w1 # also write machine-readable BENCH_<id>.json
//!                              # files into <dir> (created if missing) —
//!                              # what CI uploads as the per-commit perf
//!                              # artifact
//! ```

use pts_bench::{json, registry};
use pts_util::table::{arm_witness, disarm_witness};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Human-readable panic payload (panics carry `&str` or `String`; anything
/// else is reported opaquely).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let list = args.iter().any(|a| a == "--list");
    let json_dir: Option<std::path::PathBuf> =
        args.iter()
            .position(|a| a == "--json")
            .map(|i| match args.get(i + 1) {
                Some(dir) if !dir.starts_with("--") => std::path::PathBuf::from(dir),
                _ => {
                    eprintln!("--json requires a directory argument");
                    std::process::exit(2);
                }
            });
    let wanted: Vec<&str> = {
        // Skip flag tokens and the --json value when collecting ids.
        let json_value_idx = args.iter().position(|a| a == "--json").map(|i| i + 1);
        args.iter()
            .enumerate()
            .filter(|(i, a)| !a.starts_with("--") && Some(*i) != json_value_idx)
            .map(|(_, a)| a.as_str())
            .collect()
    };

    let experiments = registry();
    if list {
        for e in &experiments {
            println!("{:>4}  {}", e.id, e.title);
        }
        return;
    }
    if let Some(dir) = &json_dir {
        if let Err(err) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --json directory {}: {err}", dir.display());
            std::process::exit(2);
        }
    }

    // Invariant summary for the artifact notes: the numbers in a bench
    // JSON are only as trustworthy as the tree they were built from, so
    // each document records whether pts-analyze found that tree clean.
    // Computed once — the analyzer reads the whole workspace. Outside a
    // source checkout (installed binary, bare artifact dir) the summary
    // degrades to "unchecked" rather than failing the run.
    let invariants = json_dir.as_ref().map(|_| {
        match std::env::current_dir()
            .ok()
            .and_then(|cwd| pts_analyze::find_workspace_root(&cwd))
        {
            Some(root) => {
                let report = pts_analyze::analyze(&root, &[]);
                format!("invariants: {}", report.summary())
            }
            None => "invariants: unchecked (source tree unavailable)".to_string(),
        }
    });
    let notes = invariants.as_deref().unwrap_or("");

    let mut stdout = std::io::stdout().lock();
    let mode = if full { "full" } else { "quick" };
    let _ = writeln!(stdout, "# reproduce — mode: {mode}\n");
    let mut panicked: Vec<&str> = Vec::new();
    for e in &experiments {
        if !wanted.is_empty() && !wanted.contains(&e.id) {
            continue;
        }
        let _ = writeln!(stdout, "## {} — {}\n", e.id, e.title);
        let _ = stdout.flush();
        // The witness mirrors completed rows so a mid-experiment panic
        // still yields the finished part of the table (and, with --json,
        // a partial artifact marked "incomplete") instead of aborting the
        // whole run with nothing.
        arm_witness();
        let started = std::time::Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| (e.run)(!full)));
        let seconds = started.elapsed().as_secs_f64();
        let witness = disarm_witness();
        let (doc, table_md, rows, note) = match &outcome {
            Ok(table) => (
                json_dir
                    .as_ref()
                    .map(|_| json::experiment_json(e.id, e.title, mode, seconds, table, notes)),
                table.to_markdown(),
                table.len(),
                format!("_({} rows in {seconds:.1}s)_", table.len()),
            ),
            Err(payload) => {
                panicked.push(e.id);
                let (header, rows) = witness.unwrap_or_default();
                let mut partial = pts_util::Table::new(header);
                for row in &rows {
                    partial.push_row(row.iter().cloned());
                }
                (
                    json_dir.as_ref().map(|_| {
                        json::experiment_json_parts(
                            e.id,
                            e.title,
                            mode,
                            seconds,
                            partial.header(),
                            partial.rows(),
                            true,
                            notes,
                        )
                    }),
                    partial.to_markdown(),
                    partial.len(),
                    format!(
                        "**PANICKED after {seconds:.1}s** ({} completed rows salvaged): {}",
                        partial.len(),
                        panic_message(payload.as_ref()),
                    ),
                )
            }
        };
        if rows > 0 || outcome.is_ok() {
            let _ = writeln!(stdout, "{table_md}");
        }
        let _ = writeln!(stdout, "{note}\n");
        let _ = stdout.flush();
        if let (Some(dir), Some(doc)) = (&json_dir, doc) {
            let path = dir.join(format!("BENCH_{}.json", e.id));
            if let Err(err) = std::fs::write(&path, doc) {
                eprintln!("cannot write {}: {err}", path.display());
                std::process::exit(2);
            }
            let _ = writeln!(stdout, "_json → {}_\n", path.display());
        }
    }
    if !panicked.is_empty() {
        eprintln!("experiments panicked: {}", panicked.join(", "));
        std::process::exit(1);
    }
}
