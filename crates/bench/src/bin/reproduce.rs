//! `reproduce` — regenerate the paper's tables and figures.
//!
//! Usage:
//!   reproduce                # run every experiment in quick mode
//!   reproduce e1 e4 a1       # run a subset
//!   reproduce --full         # full trial counts (the EXPERIMENTS.md record)
//!   reproduce --list         # list experiment ids

use pts_bench::registry;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let list = args.iter().any(|a| a == "--list");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    let experiments = registry();
    if list {
        for e in &experiments {
            println!("{:>4}  {}", e.id, e.title);
        }
        return;
    }

    let mut stdout = std::io::stdout().lock();
    let mode = if full { "full" } else { "quick" };
    let _ = writeln!(stdout, "# reproduce — mode: {mode}\n");
    for e in &experiments {
        if !wanted.is_empty() && !wanted.contains(&e.id) {
            continue;
        }
        let _ = writeln!(stdout, "## {} — {}\n", e.id, e.title);
        let started = std::time::Instant::now();
        let table = (e.run)(!full);
        let _ = writeln!(
            stdout,
            "{}\n_({} rows in {:.1}s)_\n",
            table.to_markdown(),
            table.len(),
            started.elapsed().as_secs_f64()
        );
        let _ = stdout.flush();
    }
}
