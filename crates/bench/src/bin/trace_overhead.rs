//! `trace_overhead` — one side of the `tr1` measurement.
//!
//! Drives the m1 depth-16 pipelined `Stats` workload against one loopback
//! server in *this* build and prints machine-parsable lines; experiment
//! `tr1` runs this binary three times — obs-off (`--no-default-features`),
//! obs-on untraced, and obs-on with `--traced` (1/256 request sampling) —
//! and compares the reported rates. The split exists because
//! observability is a compile-time feature and trace sampling is a
//! per-connection config: one process run measures exactly one
//! configuration.
//!
//! ```text
//! trace_overhead [--traced] [--full]
//! ```
//!
//! Output contract (parsed by `experiments::trace`):
//!
//! ```text
//! obs=on|off
//! traced=on|off
//! trial workload=d16 i=0 requests=4000 seconds=0.021 rate=190000
//! ...
//! best workload=d16 requests_per_sec=195000
//! ```

use pts_engine::{ConcurrentEngine, EngineConfig, L0Factory};
use pts_server::{serve, Client, ClientConfig};
use std::collections::VecDeque;
use std::time::Instant;

/// The m1 sweet spot: deep enough to amortize round trips, small enough
/// that the server's dispatch path, not the demux table, is what's timed.
const DEPTH: usize = 16;
/// 1-in-N request sampling for the traced side — the rate the ≤5%
/// overhead gate is defined at.
const TRACE_EVERY: u64 = 256;

/// Drives `total` Stats requests through a window of `DEPTH` in-flight
/// handles; returns elapsed seconds.
fn run_pass(client: &mut Client, total: u64) -> f64 {
    let started = Instant::now();
    let mut window = VecDeque::with_capacity(DEPTH);
    for _ in 0..total {
        if window.len() == DEPTH {
            let front: pts_server::Pending<_> = window.pop_front().expect("non-empty window");
            front.wait().expect("stats response");
        }
        window.push_back(client.submit_stats().expect("submit stats"));
    }
    for pending in window {
        pending.wait().expect("stats response");
    }
    started.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let traced = args.iter().any(|a| a == "--traced");
    let trials = if full { 7 } else { 5 };
    let total: u64 = if full { 20_000 } else { 4_000 };

    let engine = ConcurrentEngine::new(
        EngineConfig::new(1 << 10).shards(2).pool_size(1).seed(4242),
        L0Factory::default(),
    );
    let server = serve("127.0.0.1:0", engine).expect("bind loopback server");
    let mut config = ClientConfig::new().max_in_flight(DEPTH);
    if traced {
        config = config.trace_sampling(TRACE_EVERY).trace_seed(4242);
    }
    let mut client = Client::connect_with(server.local_addr(), &config).expect("connect");

    println!("obs={}", if pts_obs::enabled() { "on" } else { "off" });
    println!("traced={}", if traced { "on" } else { "off" });
    // One discarded warmup pass: cold caches and CPU frequency ramp are
    // not what best-of-N should see.
    let _ = run_pass(&mut client, total);
    let mut best = 0.0f64;
    for i in 0..trials {
        let secs = run_pass(&mut client, total);
        let rate = total as f64 / secs;
        best = best.max(rate);
        println!("trial workload=d16 i={i} requests={total} seconds={secs:.3} rate={rate:.0}");
    }
    println!("best workload=d16 requests_per_sec={best:.0}");
    client.shutdown_server().expect("shutdown");
    server.join();
}
