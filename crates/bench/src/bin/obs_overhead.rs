//! `obs_overhead` — one side of the `o1` measurement.
//!
//! Runs the pinned S1/T1 ingest workload in *this* build and prints
//! machine-parsable lines; experiment `o1` runs this binary twice — once
//! from the default (instrumented) build and once from
//! `--no-default-features` (obs-off) — and compares the reported rates.
//! The split exists because observability is a compile-time feature: one
//! process can only ever measure one side.
//!
//! ```text
//! obs_overhead [--full]
//! ```
//!
//! Output contract (parsed by `experiments::obs`):
//!
//! ```text
//! obs=on|off
//! trial workload=seq i=0 updates=61440 seconds=0.021 rate=2.9e6
//! ...
//! best workload=seq updates_per_sec=3.1e6
//! best workload=conc updates_per_sec=4.8e6
//! ```

use pts_bench::experiments::throughput::workload;
use pts_engine::{ConcurrentEngine, EngineConfig, LpLe2Factory, ShardedEngine};
use pts_stream::Stream;
use std::time::Instant;

const BATCH_LEN: usize = 1024;
const QUERY_EVERY_BATCHES: usize = 8;

/// One timed pass of the s1 loop (S=4 sequential): returns
/// `(updates, seconds)`.
fn run_seq(base: &Stream, reps: usize, n: usize) -> (u64, f64) {
    let factory = LpLe2Factory::for_universe(n, 2.0);
    let config = EngineConfig::new(n).shards(4).pool_size(2).seed(99);
    let mut engine = ShardedEngine::new(config, factory);
    let started = Instant::now();
    for _ in 0..reps {
        for (b, batch) in base.batches(BATCH_LEN).enumerate() {
            engine.ingest_batch(batch);
            if b % QUERY_EVERY_BATCHES == 0 {
                let _ = engine.sample();
            }
        }
    }
    (engine.stats().updates, started.elapsed().as_secs_f64())
}

/// One timed pass of the t1 loop (T=4 concurrent), flushed to quiescence
/// before the clock stops.
fn run_conc(base: &Stream, reps: usize, n: usize) -> (u64, f64) {
    let factory = LpLe2Factory::for_universe(n, 2.0);
    let config = EngineConfig::new(n).shards(4).pool_size(2).seed(99);
    let mut engine = ConcurrentEngine::new(config, factory);
    let started = Instant::now();
    for _ in 0..reps {
        for (b, batch) in base.batches(BATCH_LEN).enumerate() {
            engine.ingest_batch(batch);
            if b % QUERY_EVERY_BATCHES == 0 {
                let _ = engine.sample();
            }
        }
    }
    engine.flush();
    (engine.stats().updates, started.elapsed().as_secs_f64())
}

fn main() {
    let full = std::env::args().skip(1).any(|a| a == "--full");
    let trials = if full { 7 } else { 5 };
    let (base, reps, n) = workload(!full);
    println!("obs={}", if pts_obs::enabled() { "on" } else { "off" });
    for (name, run) in [
        ("seq", run_seq as fn(&Stream, usize, usize) -> (u64, f64)),
        ("conc", run_conc),
    ] {
        // One discarded warmup pass: the first run after a build pays
        // cold caches and CPU frequency ramp, which best-of-N should not.
        let _ = run(&base, reps, n);
        let mut best = 0.0f64;
        for i in 0..trials {
            let (updates, seconds) = run(&base, reps, n);
            let rate = updates as f64 / seconds;
            best = best.max(rate);
            println!(
                "trial workload={name} i={i} updates={updates} seconds={seconds:.3} rate={rate:.0}"
            );
        }
        println!("best workload={name} updates_per_sec={best:.0}");
    }
}
