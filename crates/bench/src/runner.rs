//! Parallel trial machinery for the experiment harness.
//!
//! Every distribution experiment repeats "build a fresh sampler, ingest the
//! workload, query once" thousands of times with independent seeds; trials
//! are embarrassingly parallel, so we shard the seed range across threads
//! with `std::thread::scope` (no extra dependencies needed).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of worker threads to use.
pub fn worker_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(24)
}

/// Runs `trials` independent trials of `f` (seeded `0..trials`) in
/// parallel; `f` returns `Some(index)` for a sample landing on `index` or
/// `None` for a FAIL. Returns per-index counts plus the FAIL count.
pub fn parallel_counts<F>(universe: usize, trials: u64, f: F) -> (Vec<u64>, u64)
where
    F: Fn(u64) -> Option<usize> + Sync,
{
    let threads = worker_threads() as u64;
    let fails = AtomicU64::new(0);
    let counts: Vec<AtomicU64> = (0..universe).map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let f = &f;
            let fails = &fails;
            let counts = &counts;
            scope.spawn(move || {
                let mut t = w;
                while t < trials {
                    match f(t) {
                        Some(i) => {
                            counts[i].fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            fails.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    t += threads;
                }
            });
        }
    });
    (
        counts.into_iter().map(|c| c.into_inner()).collect(),
        fails.into_inner(),
    )
}

/// Runs `trials` independent trials of `f` returning one `f64` per trial
/// (NaN marks a failed trial and is dropped).
pub fn parallel_values<F>(trials: u64, f: F) -> Vec<f64>
where
    F: Fn(u64) -> f64 + Sync,
{
    let threads = worker_threads() as u64;
    let mut shards: Vec<Vec<f64>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let f = &f;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut t = w;
                    while t < trials {
                        let v = f(t);
                        if !v.is_nan() {
                            out.push(v);
                        }
                        t += threads;
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            shards.push(h.join().expect("worker panicked"));
        }
    });
    shards.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_counts_accumulate_everything() {
        // Trial t lands on index t % 5, failing when t % 7 == 0.
        let (counts, fails) = parallel_counts(5, 700, |t| {
            if t % 7 == 0 {
                None
            } else {
                Some((t % 5) as usize)
            }
        });
        assert_eq!(counts.iter().sum::<u64>() + fails, 700);
        assert_eq!(fails, 100);
    }

    #[test]
    fn parallel_values_drop_nan() {
        let vals = parallel_values(100, |t| if t % 2 == 0 { t as f64 } else { f64::NAN });
        assert_eq!(vals.len(), 50);
    }

    #[test]
    fn worker_threads_positive() {
        assert!(worker_threads() >= 1);
    }
}
