//! Ablations A1–A3: the design choices DESIGN.md calls out, measured.

use crate::runner::{parallel_counts, parallel_values};
use pts_core::{PerfectLpParams, PerfectLpSampler};
use pts_samplers::{LpLe2Params, PerfectLpLe2Sampler, TurnstileSampler};
use pts_stream::FrequencyVector;
use pts_util::stats::{mean, tv_distance};
use pts_util::table::fmt_sig;
use pts_util::Table;

/// A1: duplication vs conditional FAIL bias — the failure mode §3's
/// `(100n, 1, …, 1)` example warns about, measured on a tempered variant
/// where light coordinates still win often enough to resolve
/// `Pr[FAIL | D(1) = light]` (on the full adversarial instance light wins
/// are ~10⁻⁶-rare, which demonstrates the *motivation* but not the
/// mechanism). We sweep the duplication exponent and report the
/// conditional FAIL rates plus the end-to-end TV.
pub fn a1_duplication(quick: bool) -> Table {
    let n = 16;
    // One 5×-heavy coordinate over a flat floor: heavy wins ~60% of the
    // time, light wins resolve the conditional within the trial budget.
    let mut values = vec![10i64; n];
    values[0] = 50;
    let x = FrequencyVector::from_values(values);
    let trials: u64 = if quick { 30_000 } else { 150_000 };
    let mut table = Table::new([
        "dup_c",
        "fail(heavy wins)",
        "fail(light wins)",
        "conditional gap",
        "TV",
    ]);
    for dup_c in [0.0f64, 1.0, 2.0] {
        let mut params = LpLe2Params::for_universe(n, 2.0);
        params.dup_c = dup_c;
        // outcome encoding: 0 = heavy won & sampled, 1 = heavy won & FAIL,
        // 2 = light won & sampled, 3 = light won & FAIL.
        let (counts, _) = parallel_counts(4, trials, |t| {
            let mut s = PerfectLpLe2Sampler::new(n, params, 0xA1_000 + t);
            s.ingest_vector(&x);
            // The true argmax of the scaled vector (white-box).
            let mut best = (0u64, f64::MIN);
            for i in 0..n as u64 {
                let z = (x.value(i) as f64 * s.scale(i)).abs();
                if z > best.1 {
                    best = (i, z);
                }
            }
            let heavy_won = best.0 == 0;
            let failed = s.sample().is_none();
            Some(match (heavy_won, failed) {
                (true, false) => 0,
                (true, true) => 1,
                (false, false) => 2,
                (false, true) => 3,
            })
        });
        let fail_heavy = counts[1] as f64 / (counts[0] + counts[1]).max(1) as f64;
        let fail_light = counts[3] as f64 / (counts[2] + counts[3]).max(1) as f64;
        // End-to-end law fidelity at this dup_c (separate pass, sampled
        // indices rather than win/fail classes).
        let (law_counts, _) = parallel_counts(n, trials / 3, |t| {
            let mut s = PerfectLpLe2Sampler::new(n, params, 0xA1_700 + t);
            s.ingest_vector(&x);
            s.sample().map(|smp| smp.index as usize)
        });
        let tv = tv_distance(&law_counts, &x.lp_weights(2.0));
        table.push_row([
            format!("{dup_c}"),
            fmt_sig(fail_heavy, 3),
            fmt_sig(fail_light, 3),
            fmt_sig((fail_heavy - fail_light).abs(), 3),
            fmt_sig(tv, 3),
        ]);
    }
    table
}

/// A2: Taylor truncation depth `Q` vs the bias of the `x^{p−2}` series
/// (Lemma 2.7's geometric decay), measured directly: relative error of the
/// truncated expansion around anchors `y = x(1−δ)` as `Q` and the anchor
/// error `δ` vary. (End-to-end the sampling law is insensitive because the
/// inner sampler's anchors sit within a few percent of `x`, where a single
/// term already suffices — which is itself a finding this table records via
/// the δ=0.05 rows.)
pub fn a2_taylor_depth(_quick: bool) -> Table {
    let mut table = Table::new([
        "anchor err δ",
        "terms Q",
        "rel series error",
        "Lemma 2.7 scale δ^(Q+1)",
    ]);
    let x = 12.0f64;
    for delta in [0.5f64, 0.2, 0.05] {
        let y = x * (1.0 - delta);
        for terms in [1usize, 2, 4, 8, 16] {
            for p in [2.5f64, 3.5] {
                let a = p - 2.0;
                let truth = x.powf(a);
                let approx = PerfectLpSampler::taylor_power(a, x, y, terms);
                let rel = ((approx - truth) / truth).abs();
                table.push_row([
                    format!("{delta}"),
                    format!("{terms} (p={p})"),
                    fmt_sig(rel, 3),
                    fmt_sig(delta.powi(terms as i32 + 1), 3),
                ]);
            }
        }
    }
    table
}

/// A3: CountSketch replicas per estimate group vs clamping rate and law
/// distortion — why Algorithm 1 averages "polylog(n) instances".
pub fn a3_estimator_reps(quick: bool) -> Table {
    let n = 8;
    let p = 3.0;
    let x = FrequencyVector::from_values(vec![4, -8, 12, 2, 0, 6, -10, 3]);
    let weights = x.lp_weights(p);
    let trials: u64 = if quick { 1_500 } else { 6_000 };
    let mut table = Table::new([
        "replicas/group",
        "TV",
        "clamp rate",
        "mean |est err| of x^(p-2)",
    ]);
    for reps in [1usize, 2, 4, 8] {
        let mut params = PerfectLpParams::for_universe(n, p);
        params.reps_per_group = reps;
        // Default widths for the end-to-end law (they are what ships); the
        // replica effect is isolated by the coarse-table probe below, where
        // collision noise on the estimates is real.
        params.l2 = LpLe2Params::for_universe(n, 2.0).with_extra_estimators(params.groups() * reps);
        let clamp_total = std::sync::atomic::AtomicU64::new(0);
        let cand_total = std::sync::atomic::AtomicU64::new(0);
        let (counts, _) = parallel_counts(n, trials, |t| {
            let mut s = PerfectLpSampler::new(n, params, 0xA3_000 + t * 5);
            s.ingest_vector(&x);
            let out = s.sample().map(|smp| smp.index as usize);
            clamp_total.fetch_add(s.stats().clamps, std::sync::atomic::Ordering::Relaxed);
            cand_total.fetch_add(s.stats().candidates, std::sync::atomic::Ordering::Relaxed);
            out
        });
        // Estimate-error side channel: mean |x̂^{p−2} − x^{p−2}|/x^{p−2} on a
        // fixed heavy index via fresh instances.
        let probe_trials = if quick { 200 } else { 800 };
        let errs = parallel_values(probe_trials, |t| {
            let mut coarse = LpLe2Params::for_universe(n, 2.0).with_extra_estimators(reps);
            coarse.buckets = 8;
            let mut s = PerfectLpLe2Sampler::new(n, coarse, 0xA3_900 + t);
            s.ingest_vector(&x);
            let truth = (x.value(2) as f64).abs(); // |x_2| = 12; p−2 = 1
            (s.mean_estimate(0, reps, 2).abs() - truth).abs() / truth
        });
        let clamps = clamp_total.into_inner();
        let cands = cand_total.into_inner().max(1);
        table.push_row([
            reps.to_string(),
            fmt_sig(tv_distance(&counts, &weights), 3),
            fmt_sig(clamps as f64 / cands as f64, 4),
            fmt_sig(mean(&errs), 3),
        ]);
    }
    table
}
