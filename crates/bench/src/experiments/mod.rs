//! The experiment suite: one function per table/figure of EXPERIMENTS.md.
//!
//! Every experiment returns a rendered markdown [`Table`] (plus prints
//! progress); the `reproduce` binary selects and runs them. `quick` mode
//! trims trial counts for smoke runs; `--full` reproduces the numbers
//! recorded in EXPERIMENTS.md.

// Progress lines on stdout ARE the product here: `reproduce` is a
// terminal tool and these modules are its reporting layer, so the
// crate-wide never-print rule is lifted for this subtree only.
#![allow(clippy::print_stdout)]

pub mod ablations;
pub mod accuracy;
pub mod cluster;
pub mod distribution;
pub mod lower_bound;
pub mod multiplex;
pub mod obs;
pub mod service;
pub mod space;
pub mod table1;
pub mod tenants;
pub mod throughput;
pub mod timing;
pub mod trace;
pub mod wire;

use pts_util::Table;

/// A runnable experiment.
pub struct Experiment {
    /// Identifier (`tab1`, `e1`, …, `s1`, `t1`, `w1`, `n1`, `c1`, `m1`, `mt1`, `o1`, `tr1`, `a3`).
    pub id: &'static str,
    /// What it reproduces.
    pub title: &'static str,
    /// The runner.
    pub run: fn(quick: bool) -> Table,
}

/// The full registry, in EXPERIMENTS.md order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "tab1",
            title: "Table 1 — sampler comparison matrix (measured)",
            run: table1::run,
        },
        Experiment {
            id: "e1",
            title: "E1 — perfect Lp (p>2) sampling law (Thm 1.2/2.6/2.10)",
            run: distribution::e1_perfect_lp,
        },
        Experiment {
            id: "e2",
            title: "E2 — perfect sampler space scaling n^(1-2/p) (Thm 1.2)",
            run: space::e2_perfect_space,
        },
        Experiment {
            id: "e3",
            title: "E3 — (1+eps) value estimates (Thm 1.2/2.10)",
            run: accuracy::e3_estimates,
        },
        Experiment {
            id: "e4",
            title: "E4 — approximate sampler law vs eps (Thm 1.3/3.21)",
            run: distribution::e4_approx_lp,
        },
        Experiment {
            id: "e5",
            title: "E5 — fast-update vs naive duplication (Thm 1.3)",
            run: timing::e5_update_time,
        },
        Experiment {
            id: "e6",
            title: "E6 — approximate sampler space scaling (Thm 1.3/3.21)",
            run: space::e6_approx_space,
        },
        Experiment {
            id: "e7",
            title: "E7 — lower-bound distinguishing protocol (Thm 1.4/4.3)",
            run: lower_bound::e7_phase_transition,
        },
        Experiment {
            id: "e8",
            title: "E8 — perfect polynomial sampler (Thm 1.5/2.14)",
            run: distribution::e8_polynomial,
        },
        Experiment {
            id: "e9",
            title: "E9 — subset-norm estimation / RFDS (Thm 1.6/5.3)",
            run: accuracy::e9_subset_norm,
        },
        Experiment {
            id: "e10",
            title: "E10 — log G-sampler (Thm 5.5)",
            run: distribution::e10_log,
        },
        Experiment {
            id: "e11",
            title: "E11 — cap G-sampler (Thm 5.6)",
            run: distribution::e11_cap,
        },
        Experiment {
            id: "e12",
            title: "E12 — M-estimator G-samplers via rejection (Thm 5.7)",
            run: distribution::e12_m_estimators,
        },
        Experiment {
            id: "s1",
            title: "S1 — engine ingest throughput vs shard count (pts-engine)",
            run: throughput::s1_engine_throughput,
        },
        Experiment {
            id: "t1",
            title: "T1 — concurrent engine thread scaling, T in {1,2,4,8} (pts-engine)",
            run: throughput::t1_thread_scaling,
        },
        Experiment {
            id: "w1",
            title: "W1 — durable snapshot/checkpoint bytes vs n, p, shards (wire format)",
            run: wire::w1_snapshot_size,
        },
        Experiment {
            id: "n1",
            title: "N1 — service requests/sec over loopback vs batch size (pts-server)",
            run: service::n1_service_throughput,
        },
        Experiment {
            id: "c1",
            title: "C1 — cluster throughput + sample latency vs node count (pts-cluster)",
            run: cluster::c1_cluster_scaling,
        },
        Experiment {
            id: "m1",
            title: "M1 — pipelined requests/sec vs in-flight depth + scatter vs N (wire v3)",
            run: multiplex::m1_multiplexing,
        },
        Experiment {
            id: "mt1",
            title: "MT1 — multi-tenant serving: req/sec + bytes/tenant vs tenant count (wire v4)",
            run: tenants::mt1_tenants,
        },
        Experiment {
            id: "o1",
            title: "O1 — observability overhead: instrumented vs obs-off builds (pts-obs)",
            run: obs::o1_obs_overhead,
        },
        Experiment {
            id: "tr1",
            title: "TR1 — tracing overhead: traced 1/256 vs untraced vs obs-off (wire v5)",
            run: trace::tr1_trace_overhead,
        },
        Experiment {
            id: "a1",
            title: "A1 — ablation: duplication vs conditional FAIL bias",
            run: ablations::a1_duplication,
        },
        Experiment {
            id: "a2",
            title: "A2 — ablation: Taylor truncation depth (Lemma 2.7)",
            run: ablations::a2_taylor_depth,
        },
        Experiment {
            id: "a3",
            title: "A3 — ablation: estimator replicas vs clamping",
            run: ablations::a3_estimator_reps,
        },
    ]
}
