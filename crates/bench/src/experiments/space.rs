//! Space-scaling experiments E2 and E6: fit the exponent of
//! `space_bits` against the universe size and compare with `1 − 2/p`.
//!
//! The paper's bounds carry `polylog(n)` factors that dominate at laptop
//! `n`; the fit therefore regresses `log₂(space / polylog(n))` on `log₂ n`
//! — the table reports both the raw and the polylog-deflated exponents.

use pts_core::{ApproxLpParams, ApproxLpSampler, PerfectLpParams, PerfectLpSampler};
use pts_samplers::TurnstileSampler;
use pts_util::stats::linear_fit;
use pts_util::table::{fmt_bits, fmt_sig};
use pts_util::Table;

/// The known polylog carried by the configuration at universe `n`:
/// `attempts/n^{1−2/p} × rows × buckets-per-log² × estimator replicas`.
/// Deflating the measured size by this leaves the `n^{1−2/p}` core the
/// theorem asserts — every factor here is an explicit parameter formula,
/// not a fit.
fn analytic_polylog(n: usize, p: f64) -> f64 {
    let params = PerfectLpParams::for_universe(n, p);
    let nf = n as f64;
    let attempts_polylog = params.attempts as f64 / nf.powf(1.0 - 2.0 / p);
    let l2 = params.l2;
    attempts_polylog * (l2.rows * l2.buckets * (1 + l2.extra_estimators)) as f64
}

/// E2: perfect-sampler space across a universe sweep.
pub fn e2_perfect_space(quick: bool) -> Table {
    let mut table = Table::new([
        "p",
        "n",
        "space",
        "raw exponent",
        "deflated exponent",
        "target 1-2/p",
    ]);
    let ns: &[usize] = if quick {
        &[64, 128, 256, 512]
    } else {
        &[64, 128, 256, 512, 1024, 2048]
    };
    for p in [2.5f64, 3.0, 4.0] {
        let mut xs = Vec::new();
        let mut raw = Vec::new();
        let mut deflated = Vec::new();
        let mut sizes = Vec::new();
        for &n in ns {
            let bits =
                PerfectLpSampler::projected_space_bits(n, PerfectLpParams::for_universe(n, p));
            xs.push((n as f64).log2());
            raw.push((bits as f64).log2());
            deflated.push((bits as f64 / analytic_polylog(n, p)).log2());
            sizes.push(bits);
        }
        let (_, slope_raw, _) = linear_fit(&xs, &raw);
        let (_, slope_def, r2) = linear_fit(&xs, &deflated);
        for (i, &n) in ns.iter().enumerate() {
            table.push_row([
                format!("{p}"),
                n.to_string(),
                fmt_bits(sizes[i]),
                if i == ns.len() - 1 {
                    fmt_sig(slope_raw, 3)
                } else {
                    String::new()
                },
                if i == ns.len() - 1 {
                    format!("{} (R²={})", fmt_sig(slope_def, 3), fmt_sig(r2, 3))
                } else {
                    String::new()
                },
                if i == ns.len() - 1 {
                    fmt_sig(1.0 - 2.0 / p, 3)
                } else {
                    String::new()
                },
            ]);
        }
    }
    table
}

/// E6: approximate-sampler space across universe and ε sweeps.
pub fn e6_approx_space(quick: bool) -> Table {
    let mut table = Table::new(["sweep", "value", "space", "fitted exponent", "target"]);
    let p = 4.0;
    // Universe sweep at fixed ε.
    let ns: &[usize] = if quick {
        &[256, 1024, 4096]
    } else {
        &[256, 512, 1024, 2048, 4096, 8192]
    };
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut rows: Vec<(String, usize)> = Vec::new();
    for &n in ns {
        let s = ApproxLpSampler::new(n, ApproxLpParams::for_universe(n, p, 0.2), 1);
        let bits = s.space_bits();
        xs.push((n as f64).log2());
        // Deflate the log²n of Theorem 1.3's n^{1−2/p} log²n log(1/ε).
        let l2n = (n as f64).log2();
        ys.push((bits as f64 / (l2n * l2n)).log2());
        rows.push((format!("n={n}"), bits));
    }
    let (_, slope, _) = linear_fit(&xs, &ys);
    for (i, (label, bits)) in rows.iter().enumerate() {
        table.push_row([
            "universe".to_string(),
            label.clone(),
            fmt_bits(*bits),
            if i == rows.len() - 1 {
                fmt_sig(slope, 3)
            } else {
                String::new()
            },
            if i == rows.len() - 1 {
                fmt_sig(1.0 - 2.0 / p, 3)
            } else {
                String::new()
            },
        ]);
    }
    // ε sweep at fixed n: expect log(1/ε)-ish growth (reported, not fit).
    let n = 1024;
    for eps in [0.4f64, 0.2, 0.1, 0.05] {
        let s = ApproxLpSampler::new(n, ApproxLpParams::for_universe(n, p, eps), 1);
        table.push_row([
            "epsilon".to_string(),
            format!("eps={eps}"),
            fmt_bits(s.space_bits()),
            String::new(),
            "log(1/eps)".to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_runs_quick_and_reports_exponents() {
        let t = e2_perfect_space(true);
        assert!(t.len() >= 12);
        let md = t.to_markdown();
        assert!(md.contains("target"));
    }
}
