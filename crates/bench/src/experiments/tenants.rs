//! MT1: wire v4 multi-tenancy — requests/sec and resident bytes/tenant
//! as the tenant count scales from thousands to a million.
//!
//! One loopback server with a spawner, one pipelined connection. For each
//! tier `T` the run creates `T` namespaces and ingests one small batch
//! into each (so every tenant holds live sampler state, not just a map
//! entry), driving both phases through a 64-deep in-flight window. Two
//! quantities per tier:
//!
//! * **requests/sec** — `2·T` requests (create + ingest) over wall-clock:
//!   the tenant map's sharded-lock dispatch path under churny, all-miss
//!   traffic. Dispatch itself is O(1) per request and no per-tenant
//!   threads exist to collide; at large `T` the wall-clock is dominated
//!   by faulting in each fresh engine's pages, so the rate measures
//!   spawn cost, not lookup degradation.
//! * **bytes/tenant** — the `VmRSS` delta across the tier divided by `T`:
//!   the marginal resident cost of one lazily-spawned engine (universe 64,
//!   one shard, pool of one L0 sampler). This is an allocator-level
//!   measurement, so small tiers are noisy (page granularity, free-list
//!   reuse); the million-tenant row is the honest one.
//!
//! Engines are `ShardedEngine`s on purpose: the concurrent engine spawns
//! worker threads per instance, which is exactly the per-tenant-resource
//! explosion the tenant map exists to avoid at this scale.

use pts_engine::{EngineConfig, L0Factory, ShardedEngine};
use pts_server::{Client, ClientConfig, Pending, Server};
use pts_stream::Update;
use pts_util::table::fmt_sig;
use pts_util::Table;
use std::collections::VecDeque;
use std::time::Instant;

/// Tenant-count tiers (quick keeps CI smoke runs to seconds).
const QUICK_TIERS: [u64; 2] = [1_000, 10_000];
const FULL_TIERS: [u64; 3] = [10_000, 100_000, 1_000_000];
/// In-flight request window for both phases.
const DEPTH: usize = 64;

/// The leanest engine that still holds real sampler state.
fn tiny_engine(seed: u64) -> ShardedEngine<L0Factory> {
    ShardedEngine::new(
        EngineConfig::new(64).shards(1).pool_size(1).seed(seed),
        L0Factory::default(),
    )
}

/// Resident set size in bytes, from `/proc/self/status` (`None` off
/// Linux — the column degrades to `-`).
fn vm_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: u64 = status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// Drains the in-flight window down below `depth`, then pushes `pending`.
fn window_push<T>(window: &mut VecDeque<Pending<T>>, pending: Pending<T>, depth: usize) {
    if window.len() == depth {
        let front = window.pop_front().expect("non-empty window");
        front.wait().expect("response");
    }
    window.push_back(pending);
}

fn drain<T>(window: &mut VecDeque<Pending<T>>) {
    for pending in window.drain(..) {
        pending.wait().expect("response");
    }
}

/// One tier: returns (seconds for 2·T requests, bytes/tenant or None).
fn tier_run(tenants: u64) -> (f64, Option<u64>) {
    let server: Server = pts_server::serve_with_spawner("127.0.0.1:0", tiny_engine(0), tiny_engine)
        .expect("bind server");
    let config = ClientConfig::new().max_in_flight(DEPTH);
    let mut client = Client::connect_with(server.local_addr(), &config).expect("connect");

    let rss_before = vm_rss_bytes();
    let started = Instant::now();

    // Phase 1: create every namespace, pipelined.
    let mut creates: VecDeque<Pending<()>> = VecDeque::with_capacity(DEPTH);
    for ns in 1..=tenants {
        let pending = client.submit_create_namespace(ns).expect("submit create");
        window_push(&mut creates, pending, DEPTH);
    }
    drain(&mut creates);

    // Phase 2: one tiny ingest per tenant — forces the lazy spawn and
    // leaves live per-tenant sampler state behind for the RSS delta.
    let mut ingests: VecDeque<Pending<u64>> = VecDeque::with_capacity(DEPTH);
    for ns in 1..=tenants {
        let batch = [Update::new(ns % 64, 1 + (ns % 5) as i64)];
        let pending = client
            .submit_ingest_batch_ns(ns, &batch)
            .expect("submit ingest");
        window_push(&mut ingests, pending, DEPTH);
    }
    drain(&mut ingests);

    let secs = started.elapsed().as_secs_f64();
    let rss_after = vm_rss_bytes();

    // Spot-check a probe tenant actually holds its stream before teardown.
    let probe = tenants.max(2) / 2;
    let stats = client.stats_ns(probe).expect("probe stats");
    assert_eq!(stats.updates, 1, "tenant {probe} lost its ingest");

    let bytes_per_tenant = match (rss_before, rss_after) {
        (Some(b), Some(a)) => Some(a.saturating_sub(b) / tenants),
        _ => None,
    };

    client.shutdown_server().expect("shutdown");
    server.join();
    (secs, bytes_per_tenant)
}

/// MT1 runner.
pub fn mt1_tenants(quick: bool) -> Table {
    let tiers: &[u64] = if quick { &QUICK_TIERS } else { &FULL_TIERS };
    let mut table = Table::new(["tenants", "requests", "seconds", "req/sec", "bytes/tenant"]);
    for &tenants in tiers {
        let (secs, bytes_per_tenant) = tier_run(tenants);
        let requests = 2 * tenants;
        let rate = requests as f64 / secs;
        let bytes_cell = bytes_per_tenant
            .map(|b| b.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "  T={tenants}: {requests} requests in {secs:.3}s = {} req/s, {bytes_cell} bytes/tenant",
            fmt_sig(rate, 3)
        );
        table.push_row([
            tenants.to_string(),
            requests.to_string(),
            fmt_sig(secs, 3),
            fmt_sig(rate, 3),
            bytes_cell,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shape only — rates and RSS are machine-dependent; the flat-in-T
    /// claim lives in the recorded EXPERIMENTS.md runs.
    #[test]
    fn mt1_reports_every_tier() {
        let t = mt1_tenants(true);
        assert_eq!(t.len(), QUICK_TIERS.len());
        for (row, tenants) in t.rows().iter().zip(QUICK_TIERS) {
            assert_eq!(row[0], tenants.to_string(), "missing tier T={tenants}");
            assert_eq!(row[1], (2 * tenants).to_string(), "request count drifted");
        }
    }
}
