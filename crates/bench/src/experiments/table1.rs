//! Table 1, regenerated with measurements.
//!
//! The paper's Table 1 is a qualitative comparison matrix (stream model,
//! distortion class, randomness, function class). We reproduce every row:
//! rows we implement get *measured* distortion on a shared workload; the
//! two rows whose designs are outside the turnstile scope of this library
//! (\[CG19\] soft concave sublinear, \[PW25\] Lévy-process samplers) are
//! printed from the paper's stated properties and marked `paper-reported`.

use crate::runner::parallel_counts;
use pts_core::{ApproxLpBatch, ApproxLpParams, PerfectLpParams, PerfectLpSampler};
use pts_samplers::{
    LpLe2Batch, LpLe2Params, PrecisionParams, PrecisionSampler, ReservoirSampler, TurnstileSampler,
};
use pts_stream::gen::zipf_vector;
use pts_stream::{Stream, StreamStyle};
use pts_util::stats::tv_distance;
use pts_util::table::fmt_sig;
use pts_util::Table;

/// T1 runner.
pub fn run(quick: bool) -> Table {
    let n = 32;
    let trials: u64 = if quick { 3_000 } else { 15_000 };
    let x = zipf_vector(n, 1.1, 60, 601);
    let w2 = x.lp_weights(2.0);
    let w1 = x.lp_weights(1.0);
    let w3 = x.lp_weights(3.0);

    let mut table = Table::new([
        "sampler (paper row)",
        "stream model",
        "distortion class",
        "function",
        "measured TV",
        "fail rate",
    ]);

    // [Vit85] reservoir — insertion-only, truly perfect L1.
    {
        let (counts, fails) = parallel_counts(n, trials, |t| {
            let mut rng = pts_util::Xoshiro256pp::new(0x71_000 + t);
            let s = Stream::from_target(&x_abs(&x), StreamStyle::InsertionOnly, &mut rng);
            let mut r = ReservoirSampler::new(0x71_500 + t);
            r.ingest_stream(&s);
            r.sample().map(|smp| smp.index as usize)
        });
        table.push_row([
            "reservoir [Vit85]".to_string(),
            "insertion-only".to_string(),
            "truly perfect".to_string(),
            "L1".to_string(),
            fmt_sig(tv_distance(&counts, &w1), 3),
            fmt_sig(fails as f64 / trials as f64, 3),
        ]);
    }

    // [MW10/AKO11/JST11] precision sampling — turnstile, approximate.
    {
        let params = PrecisionParams::for_universe(n, 2.0, 0.3);
        let (counts, fails) = parallel_counts(n, trials, |t| {
            let mut s = PrecisionSampler::new(n, params, 0x72_000 + t);
            s.ingest_vector(&x);
            s.sample().map(|smp| smp.index as usize)
        });
        table.push_row([
            "precision sampling [JST11]".to_string(),
            "turnstile".to_string(),
            "approximate (1±eps)".to_string(),
            "Lp, p<=2 (run: p=2)".to_string(),
            fmt_sig(tv_distance(&counts, &w2), 3),
            fmt_sig(fails as f64 / trials as f64, 3),
        ]);
    }

    // [JW18] perfect Lp, p<=2.
    {
        let params = LpLe2Params::for_universe(n, 2.0);
        let (counts, fails) = parallel_counts(n, trials, |t| {
            let mut s = LpLe2Batch::new(n, params, 8, 0x73_000 + t);
            s.ingest_vector(&x);
            s.sample().map(|smp| smp.index as usize)
        });
        table.push_row([
            "perfect Lp [JW18]".to_string(),
            "turnstile".to_string(),
            "perfect".to_string(),
            "Lp, p<=2 (run: p=2)".to_string(),
            fmt_sig(tv_distance(&counts, &w2), 3),
            fmt_sig(fails as f64 / trials as f64, 3),
        ]);
    }

    // Paper-reported rows (outside this library's turnstile scope).
    table.push_row([
        "soft concave sublinear [CG19]".to_string(),
        "insertion-only".to_string(),
        "approximate".to_string(),
        "concave sublinear (paper-reported)".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    table.push_row([
        "Levy-process samplers [PW25]".to_string(),
        "insertion-only + random oracle".to_string(),
        "truly perfect".to_string(),
        "Lp p<1, log, soft-cap (paper-reported)".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    table.push_row([
        "truly perfect [JWZ22]".to_string(),
        "insertion-only".to_string(),
        "truly perfect".to_string(),
        "Lp p>=1, M-estimators (paper-reported)".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);

    // THIS PAPER: perfect Lp, p>2.
    {
        let trials_p = if quick { 1_500 } else { 8_000 };
        let params = PerfectLpParams::for_universe(n, 3.0);
        let (counts, fails) = parallel_counts(n, trials_p, |t| {
            let mut s = PerfectLpSampler::new(n, params, 0x74_000 + t * 7);
            s.ingest_vector(&x);
            s.sample().map(|smp| smp.index as usize)
        });
        table.push_row([
            "perfect Lp p>2 [THIS PAPER]".to_string(),
            "turnstile".to_string(),
            "perfect".to_string(),
            "Lp p>2 + polynomials (run: p=3)".to_string(),
            fmt_sig(tv_distance(&counts, &w3), 3),
            fmt_sig(fails as f64 / trials_p as f64, 3),
        ]);
    }

    // THIS PAPER: approximate Lp, p>2, fast update.
    {
        let params = ApproxLpParams::for_universe(n, 3.0, 0.3);
        let (counts, fails) = parallel_counts(n, trials, |t| {
            let mut s = ApproxLpBatch::new(n, params, 6, 0x75_000 + t);
            s.ingest_vector(&x);
            s.sample().map(|smp| smp.index as usize)
        });
        table.push_row([
            "approx Lp p>2 [THIS PAPER]".to_string(),
            "turnstile".to_string(),
            "approximate (1±eps)".to_string(),
            "Lp p>2 (run: p=3, eps=0.3)".to_string(),
            fmt_sig(tv_distance(&counts, &w3), 3),
            fmt_sig(fails as f64 / trials as f64, 3),
        ]);
    }
    table
}

/// Reservoir needs non-negative targets; Table 1 compares |x| laws.
fn x_abs(x: &pts_stream::FrequencyVector) -> pts_stream::FrequencyVector {
    pts_stream::FrequencyVector::from_values(x.values().iter().map(|v| v.abs()).collect())
}
