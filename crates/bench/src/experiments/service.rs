//! N1: service throughput — requests/sec over loopback vs batch size.
//!
//! Drives the same zipfian turnstile workload as `s1`/`t1` through a live
//! `pts-server` on 127.0.0.1 (one `IngestBatch` request per batch, a
//! `Sample` request every 8 batches — the always-on serving mix), for
//! batch sizes `B ∈ {64, 256, 1024, 4096}`. The last row repeats the best
//! batch size **in-process** (no socket, same engine and call mix), so the
//! table directly prices the protocol: framing + checksum + TCP round
//! trip, amortized over `B` updates per request.
//!
//! Timing is gated on server-side completion: every run ends with a
//! `Stats` round trip before the clock stops, which drains the engine's
//! per-shard FIFO queues (the concurrent front-end's mass query observes
//! every previously enqueued apply), so enqueued-but-unapplied work never
//! counts as served — the socket analogue of `t1`'s `flush()` rule.

use pts_engine::{ConcurrentEngine, EngineConfig, LpLe2Factory};
use pts_server::{serve, Client};
use pts_stream::gen::zipf_vector;
use pts_stream::{Stream, StreamStyle};
use pts_util::table::fmt_sig;
use pts_util::{Table, Xoshiro256pp};
use std::time::Instant;

/// The batch sizes swept over loopback.
const BATCH_SIZES: [usize; 4] = [64, 256, 1024, 4096];
/// One sample request per this many ingest requests.
const QUERY_EVERY: usize = 8;

/// The fixed workload (the `s1`/`t1` shape): one churny zipfian stream,
/// repeated to the target update count.
fn workload(quick: bool) -> (Stream, usize, usize) {
    let n = 1 << 12;
    let target_updates = if quick { 60_000 } else { 600_000 };
    let x = zipf_vector(n, 1.0, 500, 4242);
    let mut rng = Xoshiro256pp::new(4243);
    let base = Stream::from_target(&x, StreamStyle::Turnstile { churn: 1.0 }, &mut rng);
    let reps = target_updates / base.len().max(1) + 1;
    (base, reps, n)
}

fn engine(n: usize) -> ConcurrentEngine<LpLe2Factory> {
    let factory = LpLe2Factory::for_universe(n, 2.0);
    ConcurrentEngine::new(
        EngineConfig::new(n).shards(4).pool_size(2).seed(99),
        factory,
    )
}

/// N1 runner.
pub fn n1_service_throughput(quick: bool) -> Table {
    let (base, reps, n) = workload(quick);
    let mut table = Table::new([
        "transport",
        "batch",
        "requests",
        "updates",
        "seconds",
        "req/sec",
        "updates/sec",
    ]);

    for batch_len in BATCH_SIZES {
        let server = serve("127.0.0.1:0", engine(n)).expect("bind loopback");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let mut requests = 0u64;
        let started = Instant::now();
        for _ in 0..reps {
            for (b, batch) in base.batches(batch_len).enumerate() {
                client.ingest_batch(batch).expect("ingest");
                requests += 1;
                if b % QUERY_EVERY == 0 {
                    let _ = client.sample().expect("sample round trip");
                    requests += 1;
                }
            }
        }
        // Server-side completion gate (see module docs), also a request.
        let stats = client.stats().expect("stats");
        requests += 1;
        let elapsed = started.elapsed().as_secs_f64();
        client.shutdown_server().expect("shutdown");
        server.join();

        let req_rate = requests as f64 / elapsed;
        let upd_rate = stats.updates as f64 / elapsed;
        println!(
            "  loopback B={batch_len:>4}: {requests} requests, {} updates in {elapsed:.2}s = {} req/s, {} upd/s",
            stats.updates,
            fmt_sig(req_rate, 3),
            fmt_sig(upd_rate, 3)
        );
        table.push_row([
            "loopback".into(),
            batch_len.to_string(),
            requests.to_string(),
            stats.updates.to_string(),
            fmt_sig(elapsed, 3),
            fmt_sig(req_rate, 3),
            fmt_sig(upd_rate, 3),
        ]);
    }

    // The no-socket reference: identical engine and call mix, direct
    // method calls, at the largest swept batch size.
    let batch_len = *BATCH_SIZES.last().expect("non-empty sweep");
    let mut direct = engine(n);
    let mut calls = 0u64;
    let started = Instant::now();
    for _ in 0..reps {
        for (b, batch) in base.batches(batch_len).enumerate() {
            direct.ingest_batch(batch);
            calls += 1;
            if b % QUERY_EVERY == 0 {
                let _ = direct.sample();
                calls += 1;
            }
        }
    }
    direct.flush();
    let elapsed = started.elapsed().as_secs_f64();
    let updates = direct.stats().updates;
    let req_rate = calls as f64 / elapsed;
    let upd_rate = updates as f64 / elapsed;
    println!(
        "  in-proc  B={batch_len:>4}: {calls} calls, {updates} updates in {elapsed:.2}s = {} call/s, {} upd/s",
        fmt_sig(req_rate, 3),
        fmt_sig(upd_rate, 3)
    );
    table.push_row([
        "in-proc".into(),
        batch_len.to_string(),
        calls.to_string(),
        updates.to_string(),
        fmt_sig(elapsed, 3),
        fmt_sig(req_rate, 3),
        fmt_sig(upd_rate, 3),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n1_reports_all_batch_sizes_plus_reference() {
        let t = n1_service_throughput(true);
        assert_eq!(t.len(), BATCH_SIZES.len() + 1);
        let md = t.to_markdown();
        for b in BATCH_SIZES {
            assert!(md.contains(&format!("| {b} ")), "missing row {b}: {md}");
        }
        assert!(md.contains("| in-proc "), "missing reference row: {md}");
    }
}
