//! E7: the lower-bound phase transition (Theorems 1.4 / 4.2 / 4.3).
//!
//! Runs the two-sample distinguishing protocol on the hard pair of
//! Definition 4.1 while sweeping the sampler's stage-1 width through and
//! below the `n^{1−2/p}`-scale the bound protects. Accuracy ≥ 0.6 at the
//! paper's dimension and decay under starvation is the observable content
//! of the Ω(n^{1−2/p} log n) bound.

use crate::runner::parallel_values;
use pts_core::lower_bound::{classify, ProtocolConfig};
use pts_stream::hard::{draw_alpha, draw_beta};
use pts_util::stats::wilson_interval;
use pts_util::table::fmt_sig;
use pts_util::{derive_seed, Table, Xoshiro256pp};

/// E7 runner.
pub fn e7_phase_transition(quick: bool) -> Table {
    let n = 256;
    let p = 4.0;
    let trials: u64 = if quick { 60 } else { 300 };
    let base = ProtocolConfig::for_universe(n, p);
    let native = base.sampler.cs1_buckets;
    let mut table = Table::new([
        "stage-1 buckets",
        "vs n^(1-2/p)",
        "accuracy",
        "95% CI",
        "verdict",
    ]);
    let n_pow = (n as f64).powf(1.0 - 2.0 / p);
    for buckets in [native, native / 4, native / 16, native / 64, 4] {
        let cfg = base.with_cs1_buckets(buckets);
        let outcomes = parallel_values(trials, |t| {
            let mut rng = Xoshiro256pp::new(derive_seed(0xE7_000, t));
            let truth_beta = t % 2 == 1;
            let draw = if truth_beta {
                draw_beta(n, cfg.spike_c, p, &mut rng)
            } else {
                draw_alpha(n, &mut rng)
            };
            let got = classify(&draw, n, &cfg, derive_seed(0xE7_500, t));
            if got == truth_beta {
                1.0
            } else {
                0.0
            }
        });
        let correct = outcomes.iter().filter(|&&o| o > 0.5).count() as u64;
        let acc = correct as f64 / outcomes.len() as f64;
        let (lo, hi) = wilson_interval(correct, outcomes.len() as u64);
        table.push_row([
            buckets.to_string(),
            format!("{:.1}×", buckets as f64 / n_pow),
            fmt_sig(acc, 3),
            format!("[{}, {}]", fmt_sig(lo, 3), fmt_sig(hi, 3)),
            if acc >= 0.6 {
                "distinguishes"
            } else {
                "starved"
            }
            .to_string(),
        ]);
    }
    table
}
