//! E5: update time — the fast-update simulation of §3 versus literally
//! materializing the `M = n^c` duplicated coordinates.
//!
//! The naive path scales every one of the `M` virtual copies by its own
//! exponential and hashes it into the stage-1 table; the simulated path does
//! O(grid support + rows·kept) work per update regardless of `M`
//! (Lemma 3.17). The measured ratio is the figure's payoff.

use pts_core::{ApproxLpParams, ApproxLpSampler};
use pts_samplers::TurnstileSampler;
use pts_sketch::{LinearSketch, ModCountSketch};
use pts_stream::gen::zipf_vector;
use pts_stream::Update;
use pts_util::table::fmt_sig;
use pts_util::variates::keyed_exponential2;
use pts_util::{derive_seed, Table};
use std::time::Instant;

/// The naive comparator: per update, loop over all `M` duplicates.
struct NaiveDuplicated {
    p: f64,
    copies: u64,
    cs: ModCountSketch,
    seed: u64,
}

impl NaiveDuplicated {
    fn new(p: f64, copies: u64, buckets: usize, seed: u64) -> Self {
        Self {
            p,
            copies,
            cs: ModCountSketch::new(5, buckets, derive_seed(seed, 1)),
            seed,
        }
    }

    fn process(&mut self, u: Update) {
        // One CountSketch write per virtual copy — the cost the paper's
        // simulation removes.
        for j in 0..self.copies {
            let e = keyed_exponential2(self.seed, u.index, j);
            let scaled = u.delta as f64 / e.powf(1.0 / self.p);
            self.cs.update(u.index * self.copies + j, scaled);
        }
    }
}

/// Times `updates` stream updates through `f`, returning ns/update.
fn time_updates<F: FnMut(Update)>(updates: &[Update], mut f: F) -> f64 {
    let start = Instant::now();
    for &u in updates {
        f(u);
    }
    start.elapsed().as_nanos() as f64 / updates.len() as f64
}

/// E5 runner.
pub fn e5_update_time(quick: bool) -> Table {
    let n = 1024;
    let p = 4.0;
    let m_updates = if quick { 2_000 } else { 20_000 };
    let x = zipf_vector(n, 1.0, 500, 501);
    let mut rng = pts_util::Xoshiro256pp::new(502);
    let stream = pts_stream::Stream::from_target(
        &x,
        pts_stream::StreamStyle::Turnstile { churn: 1.0 },
        &mut rng,
    );
    let updates: Vec<Update> = stream.updates().iter().copied().take(m_updates).collect();

    let mut table = Table::new(["path", "virtual copies M", "ns/update", "speedup", "space"]);

    // Simulated path (the paper's algorithm) at increasing duplication —
    // cost must stay flat.
    let mut sim_ns = Vec::new();
    for dup_c in [1.0f64, 2.0, 3.0] {
        let mut params = ApproxLpParams::for_universe(n, p, 0.2);
        params.dup_c = dup_c;
        let mut s = ApproxLpSampler::new(n, params, 503);
        // Warm the per-index constant cache separately so steady-state
        // update cost is what we time.
        for &u in &updates {
            s.process(u);
        }
        let ns = time_updates(&updates, |u| s.process(u));
        sim_ns.push(ns);
        table.push_row([
            "simulated (Alg 4)".to_string(),
            format!("n^{dup_c} = {:.0}", (n as f64).powf(dup_c)),
            fmt_sig(ns, 3),
            String::new(),
            pts_util::table::fmt_bits(s.space_bits()),
        ]);
    }

    // Naive materialized duplication — cost grows linearly in M.
    for copies in [64u64, 1024, if quick { 4_096 } else { 16_384 }] {
        let mut naive = NaiveDuplicated::new(p, copies, 4096, 504);
        let sample: Vec<Update> = updates.iter().copied().take(m_updates / 10).collect();
        let ns = time_updates(&sample, |u| naive.process(u));
        let speedup = ns / sim_ns[1];
        table.push_row([
            "naive duplication".to_string(),
            copies.to_string(),
            fmt_sig(ns, 3),
            format!("{}× slower", fmt_sig(speedup, 3)),
            pts_util::table::fmt_bits(naive.cs.space_bits()),
        ]);
    }
    table
}
