//! M1: wire v3 multiplexing — requests/sec vs in-flight depth, plus the
//! cluster scatter's round-trip collapse.
//!
//! Two measurements of the same mechanism:
//!
//! * **Depth sweep** — one loopback server, one connection, `Stats`
//!   requests driven through a sliding window of `D ∈ {1, 4, 16, 64}`
//!   in-flight [`pts_server::Pending`] handles. `D = 1` *is* the lockstep
//!   baseline (submit, wait, repeat — exactly the pre-v3 conversation);
//!   larger windows amortize one round trip over `D` requests, so
//!   requests/sec should improve monotonically with depth until the
//!   server's dispatch path saturates.
//! * **Scatter rows** — a real `pts-cluster` coordinator over
//!   `N ∈ {1, 2, 4}` loopback nodes, timing [`Coordinator::mass`] (one
//!   pipelined `Stats` scatter over all slice owners). Under lockstep
//!   this cost `N · RTT`; the v3 scatter submits every node's request
//!   before awaiting any answer, so wall-clock per scatter should stay
//!   ~flat as `N` grows — the property that makes cluster draws
//!   affordable on real networks.
//!
//! Loopback RTTs are microseconds, so the absolute ratios here understate
//! what a datacenter network would show; the *shape* (monotone in depth,
//! flat in N) is the reproducible claim.

use pts_cluster::{ClusterConfig, Coordinator};
use pts_engine::{ConcurrentEngine, EngineConfig, L0Factory};
use pts_server::{serve, Client, ClientConfig, Server};
use pts_util::table::fmt_sig;
use pts_util::Table;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// The in-flight depths swept (1 = the lockstep baseline).
const DEPTHS: [usize; 4] = [1, 4, 16, 64];
/// The scatter node counts swept.
const NODE_COUNTS: [usize; 3] = [1, 2, 4];

/// A small served engine — the request path, not the sampler, is the
/// thing under test.
fn small_engine(seed: u64) -> ConcurrentEngine<L0Factory> {
    ConcurrentEngine::new(
        EngineConfig::new(1 << 10).shards(2).pool_size(1).seed(seed),
        L0Factory::default(),
    )
}

/// Drives `total` Stats requests through a window of `depth` in-flight
/// handles; returns elapsed seconds.
fn depth_run(client: &mut Client, total: u64, depth: usize) -> f64 {
    let started = Instant::now();
    let mut window = VecDeque::with_capacity(depth);
    for _ in 0..total {
        if window.len() == depth {
            let front: pts_server::Pending<_> = window.pop_front().expect("non-empty window");
            front.wait().expect("stats response");
        }
        window.push_back(client.submit_stats().expect("submit stats"));
    }
    for pending in window {
        pending.wait().expect("stats response");
    }
    started.elapsed().as_secs_f64()
}

/// Spawns `nodes` loopback servers behind a coordinator (no ingest — the
/// scatter itself is the thing being timed, and `Stats` on an empty
/// engine exercises the identical path).
fn spawn_cluster(nodes: usize) -> (Vec<Server>, Coordinator) {
    let n = 1 << 10;
    let servers: Vec<Server> = (0..nodes)
        .map(|i| serve("127.0.0.1:0", small_engine(8100 + i as u64)).expect("bind node"))
        .collect();
    let mut config = ClusterConfig::new(n).seed(17).client(
        ClientConfig::new()
            .connect_timeout(Duration::from_secs(5))
            .read_timeout(Duration::from_secs(30))
            .write_timeout(Duration::from_secs(30)),
    );
    for server in &servers {
        config = config.node(server.local_addr().to_string());
    }
    let cluster = Coordinator::connect(config).expect("connect cluster");
    (servers, cluster)
}

/// M1 runner.
pub fn m1_multiplexing(quick: bool) -> Table {
    let requests: u64 = if quick { 2_000 } else { 20_000 };
    let scatters: u64 = if quick { 200 } else { 2_000 };
    let mut table = Table::new(["mode", "depth", "nodes", "ops", "seconds", "ops/sec"]);

    // Depth sweep: one server, one connection per depth (a fresh
    // connection keeps ids and demux state comparable across rows).
    let server = serve("127.0.0.1:0", small_engine(8000)).expect("bind server");
    for depth in DEPTHS {
        let config = ClientConfig::new().max_in_flight(depth);
        let mut client = Client::connect_with(server.local_addr(), &config).expect("connect");
        let secs = depth_run(&mut client, requests, depth);
        let rate = requests as f64 / secs;
        println!(
            "  pipeline D={depth}: {requests} requests in {secs:.3}s = {} req/s",
            fmt_sig(rate, 3)
        );
        table.push_row([
            "pipeline".into(),
            depth.to_string(),
            "1".into(),
            requests.to_string(),
            fmt_sig(secs, 3),
            fmt_sig(rate, 3),
        ]);
    }
    server.join();

    // Scatter rows: wall-clock per pipelined Stats scatter vs node count.
    for nodes in NODE_COUNTS {
        let (servers, mut cluster) = spawn_cluster(nodes);
        let started = Instant::now();
        for _ in 0..scatters {
            let _ = cluster.mass().expect("mass scatter");
        }
        let secs = started.elapsed().as_secs_f64();
        let rate = scatters as f64 / secs;
        println!(
            "  scatter N={nodes}: {scatters} scatters in {secs:.3}s = {} scatters/s ({} µs each)",
            fmt_sig(rate, 3),
            fmt_sig(secs * 1e6 / scatters as f64, 3)
        );
        table.push_row([
            "scatter".into(),
            "-".into(),
            nodes.to_string(),
            scatters.to_string(),
            fmt_sig(secs, 3),
            fmt_sig(rate, 3),
        ]);
        drop(cluster);
        for server in servers {
            server.join();
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shape only — no timing asserts (CI machines are noisy and may be
    /// single-core; the monotone-in-depth / flat-in-N claims live in the
    /// recorded EXPERIMENTS.md runs).
    #[test]
    fn m1_reports_every_depth_and_node_count() {
        let t = m1_multiplexing(true);
        assert_eq!(t.len(), DEPTHS.len() + NODE_COUNTS.len());
        let rows = t.rows();
        for (row, depth) in rows.iter().zip(DEPTHS) {
            assert_eq!(row[0], "pipeline", "row order drifted: {row:?}");
            assert_eq!(row[1], depth.to_string(), "missing depth row D={depth}");
            assert_eq!(row[2], "1", "depth rows are single-node");
        }
        for (row, nodes) in rows.iter().skip(DEPTHS.len()).zip(NODE_COUNTS) {
            assert_eq!(row[0], "scatter", "row order drifted: {row:?}");
            assert_eq!(row[2], nodes.to_string(), "missing scatter row N={nodes}");
        }
        // Every depth row drove the identical request count.
        assert!(rows[..DEPTHS.len()].iter().all(|r| r[3] == rows[0][3]));
    }
}
