//! TR1: wire v5 tracing overhead — traced at 1/256 vs untraced vs obs-off.
//!
//! The tracing contract (DESIGN.md §14) is "a no-op `Span` handle when a
//! request is untraced, and ≤5% request-rate overhead at 1-in-256
//! sampling when it isn't"; `tr1` is the experiment that holds the
//! implementation to it. Like `o1`, one process cannot measure every
//! side (obs is a compile-time feature), so `tr1` shells out to `cargo
//! run` and executes the `trace_overhead` helper binary three times over
//! the m1 depth-16 pipelined `Stats` workload:
//!
//! * **obs off** — `--no-default-features`: spans compiled out entirely,
//!   the floor the instrumented build is compared against;
//! * **untraced** — the instrumented build with trace sampling disabled:
//!   every request pays exactly one no-op `Span` decision;
//! * **traced 1/256** — the instrumented build sampling one request in
//!   256 into the global `TraceRing`.
//!
//! The helper self-reports `obs=on|off` and `traced=on|off`, and `tr1`
//! cross-checks both against the flags it passed — a feature-wiring or
//! config-plumbing regression fails the experiment rather than silently
//! comparing identical runs. The ≤5% gate (traced vs untraced, best of
//! N) is recorded in the table's `gate` column.

use crate::experiments::obs::parse_obs;
use pts_util::table::fmt_sig;
use pts_util::Table;
use std::process::Command;

/// The overhead budget: traced at 1/256 may cost at most this fraction
/// of the untraced request rate.
const GATE_FRACTION: f64 = 0.05;

/// Workspace root: this crate sits at `crates/bench`.
fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

/// Runs the `trace_overhead` helper in one configuration and returns the
/// best d16 request rate in requests/sec.
fn run_side(obs_on: bool, traced: bool, quick: bool) -> f64 {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut cmd = Command::new(cargo);
    cmd.current_dir(workspace_root()).args([
        "run",
        "--release",
        "--quiet",
        "-p",
        "pts-bench",
        "--bin",
        "trace_overhead",
    ]);
    if !obs_on {
        cmd.arg("--no-default-features");
    }
    if traced || !quick {
        cmd.arg("--");
        if traced {
            cmd.arg("--traced");
        }
        if !quick {
            cmd.arg("--full");
        }
    }
    let output = cmd
        .output()
        .expect("tr1: cannot spawn cargo for trace_overhead");
    let stdout = String::from_utf8_lossy(&output.stdout);
    if !output.status.success() {
        panic!(
            "tr1: trace_overhead (obs {}, traced {}) failed: {}\n{}",
            if obs_on { "on" } else { "off" },
            if traced { "on" } else { "off" },
            output.status,
            String::from_utf8_lossy(&output.stderr)
        );
    }
    let built_obs = parse_obs(&stdout).expect("tr1: helper printed no obs= line");
    assert_eq!(
        built_obs, obs_on,
        "tr1: feature wiring regression — asked for obs {obs_on} but the helper was built obs {built_obs}"
    );
    let built_traced = parse_traced(&stdout).expect("tr1: helper printed no traced= line");
    assert_eq!(
        built_traced, traced,
        "tr1: config plumbing regression — asked for traced {traced} but the helper ran traced {built_traced}"
    );
    parse_best_rate(&stdout).expect("tr1: helper printed no best line")
}

/// Extracts the helper's `traced=on|off` self-report.
pub(crate) fn parse_traced(stdout: &str) -> Option<bool> {
    stdout.lines().find_map(|l| match l.trim() {
        "traced=on" => Some(true),
        "traced=off" => Some(false),
        _ => None,
    })
}

/// Extracts the `best workload=d16 requests_per_sec=<rate>` line.
pub(crate) fn parse_best_rate(stdout: &str) -> Option<f64> {
    stdout.lines().find_map(|l| {
        l.trim()
            .strip_prefix("best workload=d16 requests_per_sec=")?
            .trim()
            .parse()
            .ok()
    })
}

/// TR1 runner.
pub fn tr1_trace_overhead(quick: bool) -> Table {
    let trials = if quick { 5 } else { 7 };
    println!("  building + running trace_overhead in three configurations (best of {trials})");
    let off = run_side(false, false, quick);
    println!("  obs off:       {} req/s", fmt_sig(off, 3));
    let untraced = run_side(true, false, quick);
    println!("  untraced:      {} req/s", fmt_sig(untraced, 3));
    let traced = run_side(true, true, quick);
    println!("  traced 1/256:  {} req/s", fmt_sig(traced, 3));

    let overhead = |base: f64, side: f64| (base / side - 1.0) * 100.0;
    let trace_cost = overhead(untraced, traced);
    let gate = if trace_cost <= GATE_FRACTION * 100.0 {
        "pass".to_string()
    } else {
        format!("FAIL (> {:.0}%)", GATE_FRACTION * 100.0)
    };
    println!(
        "  traced-vs-untraced overhead {trace_cost:+.1}% — gate ≤{:.0}%: {gate}",
        GATE_FRACTION * 100.0
    );

    let mut table = Table::new(["config", "trials", "best req/sec", "overhead", "gate ≤5%"]);
    table.push_row([
        "obs off".into(),
        trials.to_string(),
        fmt_sig(off, 3),
        format!("{:+.1}%", overhead(untraced, off)),
        "-".into(),
    ]);
    table.push_row([
        "untraced".into(),
        trials.to_string(),
        fmt_sig(untraced, 3),
        "baseline".into(),
        "-".into(),
    ]);
    table.push_row([
        "traced 1/256".into(),
        trials.to_string(),
        fmt_sig(traced, 3),
        format!("{trace_cost:+.1}%"),
        gate,
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full runner shells out to cargo (a release build per side), so
    // unit tests pin the output contract instead of running it.

    #[test]
    fn parses_the_helper_output_contract() {
        let stdout = "obs=on\n\
                      traced=on\n\
                      trial workload=d16 i=0 requests=4000 seconds=0.021 rate=190000\n\
                      best workload=d16 requests_per_sec=195000\n";
        assert_eq!(parse_traced(stdout), Some(true));
        assert_eq!(parse_best_rate(stdout), Some(195000.0));
    }

    #[test]
    fn ignores_unrelated_lines() {
        assert_eq!(parse_traced("warning: something\nobs=off\n"), None);
        assert_eq!(
            parse_best_rate("best workload=d16 requests_per_sec=oops\n"),
            None
        );
        assert_eq!(
            parse_best_rate("best workload=seq updates_per_sec=100\n"),
            None
        );
    }
}
