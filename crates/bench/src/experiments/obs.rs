//! O1: observability overhead — instrumented vs obs-off builds.
//!
//! The obs contract (DESIGN.md §11) is "a few relaxed atomics per touched
//! metric, zero when compiled off"; `o1` is the experiment that holds the
//! implementation to it. Instrumentation is a compile-time feature, so one
//! process cannot measure both sides: `o1` shells out to `cargo run` and
//! executes the `obs_overhead` helper binary twice on the pinned S1/T1
//! workload — once from the default (instrumented) workspace build, once
//! from `--no-default-features` (obs compiled off) — and reports best-of-N
//! ingest rates side by side with the relative overhead.
//!
//! The helper also prints which side it was built as (`obs=on|off`), and
//! `o1` cross-checks that against the flags it passed — a feature-wiring
//! regression (e.g. a dependency edge that stops forwarding
//! `default-features = false`) fails the experiment rather than silently
//! comparing two instrumented builds.

use pts_util::table::fmt_sig;
use pts_util::Table;
use std::process::Command;

/// Workspace root: this crate sits at `crates/bench`.
fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

/// Runs the `obs_overhead` helper in one feature configuration and returns
/// `(seq_rate, conc_rate)` in updates/sec.
fn run_side(obs_on: bool, quick: bool) -> (f64, f64) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut cmd = Command::new(cargo);
    cmd.current_dir(workspace_root()).args([
        "run",
        "--release",
        "--quiet",
        "-p",
        "pts-bench",
        "--bin",
        "obs_overhead",
    ]);
    if !obs_on {
        cmd.arg("--no-default-features");
    }
    if !quick {
        cmd.args(["--", "--full"]);
    }
    let output = cmd
        .output()
        .expect("o1: cannot spawn cargo for obs_overhead");
    let stdout = String::from_utf8_lossy(&output.stdout);
    if !output.status.success() {
        panic!(
            "o1: obs_overhead (obs {}) failed: {}\n{}",
            if obs_on { "on" } else { "off" },
            output.status,
            String::from_utf8_lossy(&output.stderr)
        );
    }
    let built = parse_obs(&stdout).expect("o1: helper printed no obs= line");
    assert_eq!(
        built,
        obs_on,
        "o1: feature wiring regression — asked for obs {} but the helper was built obs {}",
        if obs_on { "on" } else { "off" },
        if built { "on" } else { "off" }
    );
    let best = parse_best(&stdout);
    let rate = |w: &str| {
        best.iter()
            .find(|(name, _)| name == w)
            .unwrap_or_else(|| panic!("o1: helper printed no best line for {w}"))
            .1
    };
    (rate("seq"), rate("conc"))
}

/// Extracts the helper's `obs=on|off` self-report.
pub(crate) fn parse_obs(stdout: &str) -> Option<bool> {
    stdout.lines().find_map(|l| match l.trim() {
        "obs=on" => Some(true),
        "obs=off" => Some(false),
        _ => None,
    })
}

/// Extracts `best workload=<name> updates_per_sec=<rate>` lines.
pub(crate) fn parse_best(stdout: &str) -> Vec<(String, f64)> {
    stdout
        .lines()
        .filter_map(|l| {
            let rest = l.trim().strip_prefix("best workload=")?;
            let (name, rate) = rest.split_once(" updates_per_sec=")?;
            Some((name.to_string(), rate.trim().parse().ok()?))
        })
        .collect()
}

/// O1 runner.
pub fn o1_obs_overhead(quick: bool) -> Table {
    let trials = if quick { 5 } else { 7 };
    println!("  building + running obs_overhead in both feature builds (best of {trials})");
    let (off_seq, off_conc) = run_side(false, quick);
    println!(
        "  obs off: seq {} u/s, conc {} u/s",
        fmt_sig(off_seq, 3),
        fmt_sig(off_conc, 3)
    );
    let (on_seq, on_conc) = run_side(true, quick);
    println!(
        "  obs on:  seq {} u/s, conc {} u/s",
        fmt_sig(on_seq, 3),
        fmt_sig(on_conc, 3)
    );

    let overhead = |off: f64, on: f64| format!("{:+.1}%", (off / on - 1.0) * 100.0);
    let mut table = Table::new(["workload", "obs", "trials", "best updates/sec", "overhead"]);
    table.push_row([
        "seq S=4".into(),
        "off".into(),
        trials.to_string(),
        fmt_sig(off_seq, 3),
        "baseline".into(),
    ]);
    table.push_row([
        "seq S=4".into(),
        "on".into(),
        trials.to_string(),
        fmt_sig(on_seq, 3),
        overhead(off_seq, on_seq),
    ]);
    table.push_row([
        "conc T=4".into(),
        "off".into(),
        trials.to_string(),
        fmt_sig(off_conc, 3),
        "baseline".into(),
    ]);
    table.push_row([
        "conc T=4".into(),
        "on".into(),
        trials.to_string(),
        fmt_sig(on_conc, 3),
        overhead(off_conc, on_conc),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full runner shells out to cargo (a release build per side), so
    // unit tests pin the output contract instead of running it.

    #[test]
    fn parses_the_helper_output_contract() {
        let stdout = "obs=off\n\
                      trial workload=seq i=0 updates=61440 seconds=0.021 rate=2926000\n\
                      best workload=seq updates_per_sec=3100000\n\
                      best workload=conc updates_per_sec=4800000\n";
        assert_eq!(parse_obs(stdout), Some(false));
        assert_eq!(
            parse_best(stdout),
            vec![("seq".to_string(), 3.1e6), ("conc".to_string(), 4.8e6)]
        );
    }

    #[test]
    fn ignores_unrelated_lines() {
        assert_eq!(parse_obs("warning: something\n"), None);
        assert!(parse_best("best workload=seq updates_per_sec=oops\n").is_empty());
    }
}
