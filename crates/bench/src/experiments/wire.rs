//! W1: durable-snapshot size — the paper's space story made operational.
//!
//! Theorem 1.2's headline is that perfect L_p sampler state occupies
//! `O(n^{1−2/p})` words (up to polylog factors); with the wire subsystem
//! that quantity stops being an accounting fiction and becomes **the number
//! of bytes a checkpoint writes to disk**. This experiment measures, per
//! `(factory, p, n, S)` configuration:
//!
//! * the framed [`pts_engine::EngineSnapshot`] payload (gap+varint coded sparse net
//!   vector — the merge-layer shipping unit, `O(support)` bytes);
//! * the full engine checkpoint (config + RNG + stats + every shard's pool
//!   with live sampler sketches — the crash-recovery unit, dominated by the
//!   sampler state the theorems bound);
//! * the ratio `checkpoint bytes / n^{1−2/p}`, which the space bound
//!   predicts grows only polylogarithmically in `n` at fixed `p > 2`.
//!
//! Every measured payload is also restored and cross-checked, so the
//! recorded sizes are of *working* checkpoints, not write-only blobs.

use pts_engine::{EngineConfig, LpLe2Factory, PerfectLpFactory, SamplerFactory, ShardedEngine};
use pts_stream::Update;
use pts_util::table::{fmt_sig, Table};
use pts_util::wire::{Decode, Encode};

/// Builds, loads, checkpoints, and measures one engine configuration.
/// Returns `(support, snapshot_bytes, checkpoint_bytes)`.
fn measure<F>(config: EngineConfig, factory: F, seed: u64) -> (usize, usize, usize)
where
    F: SamplerFactory + Encode + Decode + Send + 'static,
    F::Sampler: Encode + Decode + Send + 'static,
{
    let n = config.universe;
    let x = pts_stream::gen::zipf_vector(n, 1.0, 4 * n as i64, seed);
    let updates: Vec<Update> = x.iter_nonzero().map(|(i, v)| Update::new(i, v)).collect();
    let mut engine = ShardedEngine::new(config, factory);
    for chunk in updates.chunks(512) {
        engine.ingest_batch(chunk);
    }
    // Exercise the pool, then refill it: the measured checkpoint carries
    // fully live pools (the worst case — consumed slots would serialize as
    // one bit each and respawn from the net vector after restore).
    let _ = engine.sample();
    engine.prime();

    let snapshot_bytes = engine.snapshot().to_bytes().len();
    let mut checkpoint = Vec::new();
    engine.checkpoint(&mut checkpoint).expect("checkpoint");
    // The recorded size must belong to a payload that actually restores.
    let restored: ShardedEngine<F> =
        ShardedEngine::restore(&mut checkpoint.as_slice()).expect("restore");
    assert_eq!(restored.snapshot(), engine.snapshot());

    (engine.support(), snapshot_bytes, checkpoint.len())
}

/// W1 runner.
pub fn w1_snapshot_size(quick: bool) -> Table {
    let mut table = Table::new([
        "factory",
        "p",
        "n",
        "shards",
        "support",
        "snapshot B",
        "checkpoint B",
        "ckpt B / n^(1-2/p)",
    ]);

    // The merge-layer story: snapshot bytes scale with support, and the
    // checkpoint carries the (p ≤ 2) sampler pools. LpLe2 keeps the
    // configurations cheap enough to sweep shard counts.
    let l2_universes: &[usize] = if quick {
        &[1 << 10]
    } else {
        &[1 << 10, 1 << 12]
    };
    for &n in l2_universes {
        for shards in [1usize, 4] {
            let config = EngineConfig::new(n).shards(shards).pool_size(2).seed(11);
            let (support, snap, ckpt) =
                measure(config, LpLe2Factory::for_universe(n, 2.0), 21 + n as u64);
            push_row(&mut table, "lp-le2", 2.0, n, shards, support, snap, ckpt);
        }
    }

    // The paper's p > 2 space curve. Attempts scale as n^{1-2/p} ln n, so
    // the checkpoint is the theorem's word count in the flesh; universes
    // stay small because the *constant* in front (attempts × per-attempt
    // CountSketch tables, tens of KB each) is laptop-hostile — a fully
    // live pool at n = 64 already serializes to tens of megabytes.
    let hi_p_universes: &[usize] = if quick { &[16, 32] } else { &[16, 32, 64] };
    for &p in &[3.0f64, 4.0] {
        for &n in hi_p_universes {
            let config = EngineConfig::new(n).shards(1).pool_size(1).seed(13);
            let (support, snap, ckpt) =
                measure(config, PerfectLpFactory::for_universe(n, p), 31 + n as u64);
            push_row(&mut table, "perfect-lp", p, n, 1, support, snap, ckpt);
        }
    }
    table
}

#[allow(clippy::too_many_arguments)]
fn push_row(
    table: &mut Table,
    factory: &str,
    p: f64,
    n: usize,
    shards: usize,
    support: usize,
    snap: usize,
    ckpt: usize,
) {
    // The space-bound ratio only says something for p > 2 (at p = 2 the
    // exponent degenerates to n^0 and the column would just repeat the
    // absolute size).
    let ratio = if p > 2.0 {
        fmt_sig(ckpt as f64 / (n as f64).powf(1.0 - 2.0 / p), 3)
    } else {
        "-".to_string()
    };
    println!(
        "  {factory} p={p} n={n} S={shards}: support {support}, snapshot {snap} B, \
         checkpoint {ckpt} B (ratio {ratio})"
    );
    table.push_row([
        factory.to_string(),
        fmt_sig(p, 2),
        n.to_string(),
        shards.to_string(),
        support.to_string(),
        snap.to_string(),
        ckpt.to_string(),
        ratio,
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w1_reports_all_configurations() {
        let t = w1_snapshot_size(true);
        // Quick mode: 2 LpLe2 rows (S ∈ {1,4}) + 2 p-values × 2 universes.
        assert_eq!(t.len(), 6);
        let md = t.to_markdown();
        assert!(md.contains("lp-le2"), "{md}");
        assert!(md.contains("perfect-lp"), "{md}");
    }

    #[test]
    fn snapshot_bytes_track_support_not_universe() {
        // Same support, 16× universe: the snapshot payload must stay within
        // a small factor (gap varints grow with index width, not with n).
        let sizes: Vec<usize> = [1usize << 8, 1 << 12]
            .iter()
            .map(|&n| {
                let config = EngineConfig::new(n).shards(2).pool_size(1).seed(3);
                let mut e = ShardedEngine::new(config, LpLe2Factory::for_universe(n, 2.0));
                let updates: Vec<Update> = (0..64u64).map(|i| Update::new(i, 5)).collect();
                e.ingest_batch(&updates);
                e.snapshot().to_bytes().len()
            })
            .collect();
        assert!(
            sizes[1] < sizes[0] * 2,
            "snapshot grew with universe: {sizes:?}"
        );
    }
}
