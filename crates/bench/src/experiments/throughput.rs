//! S1: engine ingest throughput versus shard count.
//!
//! The engine claim under test: batched ingest through the shard router
//! scales with the shard count (each shard only feeds its own pool the
//! updates routed to it), while queries stay serviceable throughout. This
//! experiment drives a zipfian turnstile workload through
//! `ShardedEngine` configurations `S ∈ {1, 4, 16}` and reports wall-clock
//! updates/sec, plus the cost of interleaving a query every `Q` batches
//! (the always-on serving mode).
//!
//! The workload is identical across rows (same updates, same batch size),
//! so rows are directly comparable; the sampler is the perfect L₂ family
//! (`LpLe2Factory`), the engine's production default for value-weighted
//! sampling.

use pts_engine::{EngineConfig, LpLe2Factory, ShardedEngine};
use pts_stream::gen::zipf_vector;
use pts_stream::{Stream, StreamStyle};
use pts_util::table::fmt_sig;
use pts_util::{Table, Xoshiro256pp};
use std::time::Instant;

/// S1 runner.
pub fn s1_engine_throughput(quick: bool) -> Table {
    let n = 1 << 12;
    let batch_len = 1024;
    let target_updates = if quick { 60_000 } else { 600_000 };
    let query_every_batches = 8;

    // One fixed workload for every configuration.
    let x = zipf_vector(n, 1.0, 500, 4242);
    let mut rng = Xoshiro256pp::new(4243);
    let base = Stream::from_target(&x, StreamStyle::Turnstile { churn: 1.0 }, &mut rng);
    let reps = target_updates / base.len().max(1) + 1;

    let mut table = Table::new([
        "shards",
        "updates",
        "ingest s",
        "updates/sec",
        "queries",
        "⊥",
        "respawns",
    ]);
    for shards in [1usize, 4, 16] {
        let factory = LpLe2Factory::for_universe(n, 2.0);
        let config = EngineConfig::new(n).shards(shards).pool_size(2).seed(99);
        let mut engine = ShardedEngine::new(config, factory);
        let mut queries = 0u64;
        let started = Instant::now();
        for _ in 0..reps {
            for (b, batch) in base.batches(batch_len).enumerate() {
                engine.ingest_batch(batch);
                if b % query_every_batches == 0 {
                    let _ = engine.sample();
                    queries += 1;
                }
            }
        }
        let elapsed = started.elapsed().as_secs_f64();
        let stats = engine.stats();
        let rate = stats.updates as f64 / elapsed;
        println!(
            "  S={shards:>2}: {} updates in {:.2}s = {} updates/sec",
            stats.updates,
            elapsed,
            fmt_sig(rate, 3)
        );
        table.push_row([
            shards.to_string(),
            stats.updates.to_string(),
            fmt_sig(elapsed, 3),
            fmt_sig(rate, 3),
            queries.to_string(),
            stats.fails.to_string(),
            engine.respawns().to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s1_reports_all_shard_counts() {
        let t = s1_engine_throughput(true);
        assert_eq!(t.len(), 3);
        let md = t.to_markdown();
        for s in ["| 1 ", "| 4 ", "| 16 "] {
            assert!(md.contains(s), "missing row {s}: {md}");
        }
    }
}
