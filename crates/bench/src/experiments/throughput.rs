//! S1 / T1: engine ingest throughput.
//!
//! **S1** (sequential): batched ingest through the shard router is
//! shard-count-insensitive on one thread (total pool work is conserved),
//! while queries stay serviceable throughout. Drives a zipfian turnstile
//! workload through `ShardedEngine` configurations `S ∈ {1, 4, 16}` and
//! reports wall-clock updates/sec, plus the cost of interleaving a query
//! every `Q` batches (the always-on serving mode).
//!
//! **T1** (concurrent): the same workload through `ConcurrentEngine` with
//! `T ∈ {1, 2, 4, 8}` shard worker threads, against the sequential `s1`
//! configuration as baseline. Linearity makes per-shard application
//! embarrassingly parallel, so on a machine with ≥ T cores the ingest rate
//! scales with T; the table records the machine's available parallelism so
//! single-core smoke runs (where threading can only add channel overhead)
//! are readable as such. `flush()` gates every timing stop — enqueued but
//! unapplied work never counts as ingested.
//!
//! The workload is identical across rows (same updates, same batch size),
//! so rows are directly comparable; the sampler is the perfect L₂ family
//! (`LpLe2Factory`), the engine's production default for value-weighted
//! sampling.

use pts_engine::{ConcurrentEngine, EngineConfig, LpLe2Factory, ShardedEngine};
use pts_stream::gen::zipf_vector;
use pts_stream::{Stream, StreamStyle};
use pts_util::table::fmt_sig;
use pts_util::{Table, Xoshiro256pp};
use std::time::Instant;

/// S1 runner.
pub fn s1_engine_throughput(quick: bool) -> Table {
    let batch_len = 1024;
    let query_every_batches = 8;

    // One fixed workload for every configuration (shared with T1).
    let (base, reps, n) = workload(quick);

    let mut table = Table::new([
        "shards",
        "updates",
        "ingest s",
        "updates/sec",
        "queries",
        "⊥",
        "respawns",
    ]);
    for shards in [1usize, 4, 16] {
        let factory = LpLe2Factory::for_universe(n, 2.0);
        let config = EngineConfig::new(n).shards(shards).pool_size(2).seed(99);
        let mut engine = ShardedEngine::new(config, factory);
        let mut queries = 0u64;
        let started = Instant::now();
        for _ in 0..reps {
            for (b, batch) in base.batches(batch_len).enumerate() {
                engine.ingest_batch(batch);
                if b % query_every_batches == 0 {
                    let _ = engine.sample();
                    queries += 1;
                }
            }
        }
        let elapsed = started.elapsed().as_secs_f64();
        let stats = engine.stats();
        let rate = stats.updates as f64 / elapsed;
        println!(
            "  S={shards:>2}: {} updates in {:.2}s = {} updates/sec",
            stats.updates,
            elapsed,
            fmt_sig(rate, 3)
        );
        table.push_row([
            shards.to_string(),
            stats.updates.to_string(),
            fmt_sig(elapsed, 3),
            fmt_sig(rate, 3),
            queries.to_string(),
            stats.fails.to_string(),
            engine.respawns().to_string(),
        ]);
    }
    table
}

/// The fixed T1/S1 workload: one churny zipfian stream, repeated until the
/// target update count is reached. Returns `(stream, reps, universe)`.
///
/// Public because the `obs_overhead` helper binary (experiment `o1`) must
/// drive byte-identical work in both feature builds it compares.
pub fn workload(quick: bool) -> (Stream, usize, usize) {
    let n = 1 << 12;
    let target_updates = if quick { 60_000 } else { 600_000 };
    let x = zipf_vector(n, 1.0, 500, 4242);
    let mut rng = Xoshiro256pp::new(4243);
    let base = Stream::from_target(&x, StreamStyle::Turnstile { churn: 1.0 }, &mut rng);
    let reps = target_updates / base.len().max(1) + 1;
    (base, reps, n)
}

/// T1 runner: thread scaling of the concurrent engine vs the sequential
/// `s1` baseline on the identical workload.
pub fn t1_thread_scaling(quick: bool) -> Table {
    let batch_len = 1024;
    let query_every_batches = 8;
    let (base, reps, n) = workload(quick);
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!("  available parallelism: {cores} core(s)");

    let mut table = Table::new([
        "mode",
        "threads",
        "updates",
        "ingest s",
        "updates/sec",
        "vs seq",
        "queries",
        "⊥",
    ]);

    // Sequential baseline: the s1 configuration (S = 4) on one thread.
    let factory = LpLe2Factory::for_universe(n, 2.0);
    let config = EngineConfig::new(n).shards(4).pool_size(2).seed(99);
    let mut engine = ShardedEngine::new(config, factory);
    let mut queries = 0u64;
    let started = Instant::now();
    for _ in 0..reps {
        for (b, batch) in base.batches(batch_len).enumerate() {
            engine.ingest_batch(batch);
            if b % query_every_batches == 0 {
                let _ = engine.sample();
                queries += 1;
            }
        }
    }
    let seq_elapsed = started.elapsed().as_secs_f64();
    let seq_rate = engine.stats().updates as f64 / seq_elapsed;
    println!(
        "  seq S=4: {} updates in {seq_elapsed:.2}s = {} updates/sec",
        engine.stats().updates,
        fmt_sig(seq_rate, 3)
    );
    table.push_row([
        "seq".into(),
        "1".into(),
        engine.stats().updates.to_string(),
        fmt_sig(seq_elapsed, 3),
        fmt_sig(seq_rate, 3),
        "1.00".into(),
        queries.to_string(),
        engine.stats().fails.to_string(),
    ]);

    for threads in [1usize, 2, 4, 8] {
        let factory = LpLe2Factory::for_universe(n, 2.0);
        let config = EngineConfig::new(n).shards(threads).pool_size(2).seed(99);
        let mut engine = ConcurrentEngine::new(config, factory);
        let mut queries = 0u64;
        let started = Instant::now();
        for _ in 0..reps {
            for (b, batch) in base.batches(batch_len).enumerate() {
                engine.ingest_batch(batch);
                if b % query_every_batches == 0 {
                    let _ = engine.sample();
                    queries += 1;
                }
            }
        }
        // Everything enqueued must be applied before the clock stops.
        engine.flush();
        let elapsed = started.elapsed().as_secs_f64();
        let stats = engine.stats();
        let rate = stats.updates as f64 / elapsed;
        println!(
            "  T={threads:>2}: {} updates in {elapsed:.2}s = {} updates/sec ({:.2}x seq)",
            stats.updates,
            fmt_sig(rate, 3),
            rate / seq_rate
        );
        table.push_row([
            "conc".into(),
            threads.to_string(),
            stats.updates.to_string(),
            fmt_sig(elapsed, 3),
            fmt_sig(rate, 3),
            format!("{:.2}", rate / seq_rate),
            queries.to_string(),
            stats.fails.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s1_reports_all_shard_counts() {
        let t = s1_engine_throughput(true);
        assert_eq!(t.len(), 3);
        let md = t.to_markdown();
        for s in ["| 1 ", "| 4 ", "| 16 "] {
            assert!(md.contains(s), "missing row {s}: {md}");
        }
    }

    #[test]
    fn t1_reports_baseline_and_all_thread_counts() {
        let t = t1_thread_scaling(true);
        assert_eq!(t.len(), 5, "1 sequential baseline + 4 thread counts");
        let md = t.to_markdown();
        assert!(md.contains("| seq "), "missing baseline row: {md}");
        for row in ["| conc | 1 ", "| conc | 2 ", "| conc | 4 ", "| conc | 8 "] {
            assert!(md.contains(row), "missing row {row}: {md}");
        }
    }
}
