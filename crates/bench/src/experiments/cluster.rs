//! C1: cluster throughput and sample latency vs node count.
//!
//! Drives the `s1`/`t1`/`n1` zipfian turnstile workload through a real
//! `pts-cluster` coordinator over `N ∈ {1, 2, 4}` loopback `pts-server`
//! nodes (batched ingest routed per slice owner — one `IngestBatch`
//! request per touched node per batch), then times the scatter–gather
//! draw path: each `sample()` is one `Stats` scatter (`N` round trips
//! for the exact per-node masses) plus one `Sample` fetch from the
//! picked node, so the draw column directly prices the coordinator's
//! consistency protocol as a function of `N`. The last row repeats the
//! identical workload **in-process** on one `ConcurrentEngine` (no
//! sockets, direct calls) — the single-engine reference the cluster's
//! law is pinned against in `crates/cluster/tests/cluster_law.rs`.
//!
//! Timing is gated on cluster-side completion: every ingest run ends
//! with a mass scatter before the clock stops (the `Stats` answer
//! observes every previously acknowledged apply on each node), the
//! cluster analogue of `t1`'s `flush()` rule and `n1`'s final `Stats`
//! round trip.

use pts_cluster::{ClusterConfig, Coordinator};
use pts_engine::{ConcurrentEngine, EngineConfig, LpLe2Factory};
use pts_server::{serve, ClientConfig, Server};
use pts_stream::gen::zipf_vector;
use pts_stream::{Stream, StreamStyle};
use pts_util::table::fmt_sig;
use pts_util::{Table, Xoshiro256pp};
use std::time::{Duration, Instant};

/// The node counts swept.
const NODE_COUNTS: [usize; 3] = [1, 2, 4];
/// Ingest batch size (the `n1` sweet spot).
const BATCH: usize = 1024;

/// The fixed workload (the `s1`/`t1`/`n1` shape).
fn workload(quick: bool) -> (Stream, usize, usize) {
    let n = 1 << 12;
    let target_updates = if quick { 60_000 } else { 600_000 };
    let x = zipf_vector(n, 1.0, 500, 4242);
    let mut rng = Xoshiro256pp::new(4243);
    let base = Stream::from_target(&x, StreamStyle::Turnstile { churn: 1.0 }, &mut rng);
    let reps = target_updates / base.len().max(1) + 1;
    (base, reps, n)
}

fn node_engine(n: usize, seed: u64) -> ConcurrentEngine<LpLe2Factory> {
    let factory = LpLe2Factory::for_universe(n, 2.0);
    ConcurrentEngine::new(
        EngineConfig::new(n).shards(2).pool_size(2).seed(seed),
        factory,
    )
}

fn spawn_cluster(n: usize, nodes: usize) -> (Vec<Server>, Coordinator) {
    let servers: Vec<Server> = (0..nodes)
        .map(|i| serve("127.0.0.1:0", node_engine(n, 7000 + i as u64)).expect("bind node"))
        .collect();
    let mut config = ClusterConfig::new(n).seed(99).client(
        ClientConfig::new()
            .connect_timeout(Duration::from_secs(5))
            .read_timeout(Duration::from_secs(30))
            .write_timeout(Duration::from_secs(30)),
    );
    for server in &servers {
        config = config.node(server.local_addr().to_string());
    }
    let cluster = Coordinator::connect(config).expect("connect cluster");
    (servers, cluster)
}

/// C1 runner.
pub fn c1_cluster_scaling(quick: bool) -> Table {
    let (base, reps, n) = workload(quick);
    let draw_trials: u64 = if quick { 200 } else { 1_000 };
    let mut table = Table::new([
        "topology",
        "nodes",
        "updates",
        "seconds",
        "updates/sec",
        "draws",
        "draw_us",
    ]);

    for nodes in NODE_COUNTS {
        let (servers, mut cluster) = spawn_cluster(n, nodes);

        let started = Instant::now();
        for _ in 0..reps {
            for batch in base.batches(BATCH) {
                cluster.ingest_batch(batch).expect("cluster ingest");
            }
        }
        // Cluster-side completion gate (see module docs).
        let _ = cluster.mass().expect("mass scatter");
        let ingest_secs = started.elapsed().as_secs_f64();
        let updates = cluster.stats().total_updates;

        let started = Instant::now();
        for _ in 0..draw_trials {
            let _ = cluster.sample().expect("scatter-gather draw");
        }
        let draw_us = started.elapsed().as_secs_f64() * 1e6 / draw_trials as f64;

        let upd_rate = updates as f64 / ingest_secs;
        println!(
            "  cluster N={nodes}: {updates} updates in {ingest_secs:.2}s = {} upd/s; {draw_trials} draws at {} µs each",
            fmt_sig(upd_rate, 3),
            fmt_sig(draw_us, 3)
        );
        table.push_row([
            "cluster".into(),
            nodes.to_string(),
            updates.to_string(),
            fmt_sig(ingest_secs, 3),
            fmt_sig(upd_rate, 3),
            draw_trials.to_string(),
            fmt_sig(draw_us, 3),
        ]);

        drop(cluster);
        for server in servers {
            server.join();
        }
    }

    // The no-socket reference: one engine, direct calls, same workload
    // and the same draw count.
    let mut direct = node_engine(n, 7000);
    let started = Instant::now();
    for _ in 0..reps {
        for batch in base.batches(BATCH) {
            direct.ingest_batch(batch);
        }
    }
    direct.flush();
    let ingest_secs = started.elapsed().as_secs_f64();
    let updates = direct.stats().updates;
    let started = Instant::now();
    for _ in 0..draw_trials {
        let _ = direct.sample();
    }
    let draw_us = started.elapsed().as_secs_f64() * 1e6 / draw_trials as f64;
    let upd_rate = updates as f64 / ingest_secs;
    println!(
        "  in-proc N=1: {updates} updates in {ingest_secs:.2}s = {} upd/s; {draw_trials} draws at {} µs each",
        fmt_sig(upd_rate, 3),
        fmt_sig(draw_us, 3)
    );
    table.push_row([
        "in-proc".into(),
        "1".into(),
        updates.to_string(),
        fmt_sig(ingest_secs, 3),
        fmt_sig(upd_rate, 3),
        draw_trials.to_string(),
        fmt_sig(draw_us, 3),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c1_reports_every_node_count_plus_reference() {
        let t = c1_cluster_scaling(true);
        assert_eq!(t.len(), NODE_COUNTS.len() + 1);
        let rows = t.rows();
        for (row, nodes) in rows.iter().zip(NODE_COUNTS) {
            assert_eq!(row[0], "cluster", "row order drifted: {row:?}");
            assert_eq!(row[1], nodes.to_string(), "missing cluster row N={nodes}");
        }
        let reference = rows.last().expect("non-empty table");
        assert_eq!(reference[0], "in-proc", "missing reference row");
        // Every topology saw the identical workload.
        assert!(rows.iter().all(|r| r[2] == rows[0][2]));
    }
}
