//! Distribution-fidelity experiments: E1 (perfect L_p), E4 (approximate),
//! E8 (polynomial), E10/E11/E12 (G-samplers).
//!
//! Protocol: fix a workload vector, run many independent sampler instances,
//! and compare the empirical index histogram against the ideal law
//! `G(x_i)/ΣG(x_j)` via total-variation distance, max relative bias over
//! resolvable cells, and the χ² p-value.

use crate::runner::parallel_counts;
use pts_core::{
    ApproxLpBatch, ApproxLpParams, PerfectLpParams, PerfectLpSampler, Polynomial, PolynomialParams,
    PolynomialSampler, RejectionGSampler,
};
use pts_samplers::TurnstileSampler;
use pts_stream::gen::{planted_vector, zipf_vector};
use pts_stream::FrequencyVector;
use pts_util::stats::{chi_square_test, max_relative_bias, tv_distance};
use pts_util::table::fmt_sig;
use pts_util::Table;

/// Shared row builder: measures one (workload, sampler) pair.
fn law_row(
    table: &mut Table,
    label: &str,
    workload: &str,
    weights: &[f64],
    counts: &[u64],
    fails: u64,
    trials: u64,
) {
    let accepted: u64 = counts.iter().sum();
    let tv = tv_distance(counts, weights);
    let bias = max_relative_bias(counts, weights, 0.02);
    let mass: f64 = weights.iter().sum();
    let probs: Vec<f64> = weights.iter().map(|w| w / mass).collect();
    let chi = chi_square_test(counts, &probs, 5.0);
    table.push_row([
        label.to_string(),
        workload.to_string(),
        accepted.to_string(),
        format!("{:.3}", fails as f64 / trials as f64),
        fmt_sig(tv, 3),
        fmt_sig(bias, 3),
        fmt_sig(chi.p_value, 3),
    ]);
}

fn law_table() -> Table {
    Table::new([
        "sampler",
        "workload",
        "samples",
        "fail rate",
        "TV",
        "max rel bias",
        "chi2 p",
    ])
}

/// The E1 workload battery (small universes keep exact laws resolvable).
fn e1_battery(n: usize) -> Vec<(&'static str, FrequencyVector)> {
    vec![
        ("zipf(1.1)", zipf_vector(n, 1.1, 60, 101)),
        ("planted", planted_vector(n, 2, 80, 6, 102)),
        ("flat±", pts_stream::gen::uniform_vector(n, 8, 103)),
    ]
}

/// E1: the perfect L_p sampler's output law for p ∈ {2.5, 3, 3.5, 4}.
pub fn e1_perfect_lp(quick: bool) -> Table {
    let n = 32;
    let trials: u64 = if quick { 2_000 } else { 12_000 };
    let mut table = law_table();
    for p in [2.5f64, 3.0, 3.5, 4.0] {
        let params = PerfectLpParams::for_universe(n, p);
        for (wname, x) in e1_battery(n) {
            let weights = x.lp_weights(p);
            let (counts, fails) = parallel_counts(n, trials, |t| {
                let mut s = PerfectLpSampler::new(n, params, 0xE1_0000 + t * 127 + p as u64);
                s.ingest_vector(&x);
                s.sample().map(|smp| smp.index as usize)
            });
            law_row(
                &mut table,
                &format!("perfect Lp p={p}"),
                wname,
                &weights,
                &counts,
                fails,
                trials,
            );
        }
    }
    table
}

/// E4: the approximate sampler's law at ε ∈ {0.3, 0.1}.
pub fn e4_approx_lp(quick: bool) -> Table {
    let n = 32;
    let trials: u64 = if quick { 3_000 } else { 20_000 };
    let mut table = law_table();
    for eps in [0.3f64, 0.1] {
        for p in [3.0f64, 4.0] {
            let params = ApproxLpParams::for_universe(n, p, eps);
            for (wname, x) in e1_battery(n) {
                let weights = x.lp_weights(p);
                let (counts, fails) = parallel_counts(n, trials, |t| {
                    let mut s = ApproxLpBatch::new(
                        n,
                        params,
                        6,
                        0xE4_0000 + t * 131 + (eps * 100.0) as u64,
                    );
                    s.ingest_vector(&x);
                    s.sample().map(|smp| smp.index as usize)
                });
                law_row(
                    &mut table,
                    &format!("approx Lp p={p} eps={eps}"),
                    wname,
                    &weights,
                    &counts,
                    fails,
                    trials,
                );
            }
        }
    }
    table
}

/// E8: the polynomial sampler, including the scale-shift demonstration.
pub fn e8_polynomial(quick: bool) -> Table {
    let trials: u64 = if quick { 1_500 } else { 8_000 };
    let mut table = law_table();
    let g = Polynomial::new(vec![(1.0, 1.0), (0.2, 2.0)]);
    let base = FrequencyVector::from_values(vec![1, 8, 3, 0, 5, 2]);
    let scaled = FrequencyVector::from_values(base.values().iter().map(|v| v * 8).collect());
    for (wname, x) in [("base", &base), ("base×8", &scaled)] {
        let weights: Vec<f64> = x.values().iter().map(|&v| g.eval(v as f64)).collect();
        let n = x.n();
        let params = PolynomialParams::for_universe(n, g.clone());
        let (counts, fails) = parallel_counts(n, trials, |t| {
            let mut s = PolynomialSampler::new(n, params.clone(), 0xE8_0000 + t * 37);
            s.ingest_vector(x);
            s.sample().map(|smp| smp.index as usize)
        });
        law_row(
            &mut table,
            "poly |z|+0.2z²",
            wname,
            &weights,
            &counts,
            fails,
            trials,
        );
    }
    // Cubic bonus polynomial (degree > 2 engine) on a small vector.
    let g3 = Polynomial::new(vec![(1.0, 2.0), (3.0, 3.0)]);
    let x3 = FrequencyVector::from_values(vec![2, -4, 6, 1, 0, 3]);
    let weights: Vec<f64> = x3.values().iter().map(|&v| g3.eval(v as f64)).collect();
    let trials3 = if quick { 400 } else { 2_500 };
    let params3 = PolynomialParams::for_universe(x3.n(), g3);
    let (counts, fails) = parallel_counts(x3.n(), trials3, |t| {
        let mut s = PolynomialSampler::new(x3.n(), params3.clone(), 0xE8_5000 + t * 41);
        s.ingest_vector(&x3);
        s.sample().map(|smp| smp.index as usize)
    });
    law_row(
        &mut table,
        "poly z²+3|z|³",
        "mixed",
        &weights,
        &counts,
        fails,
        trials3,
    );
    table
}

/// E10: the logarithmic G-sampler.
pub fn e10_log(quick: bool) -> Table {
    let trials: u64 = if quick { 4_000 } else { 20_000 };
    let mut table = law_table();
    let x = FrequencyVector::from_values(vec![1, 10, 100, 1000, 0, -50, 3, 7]);
    let n = x.n();
    let weights: Vec<f64> = x
        .values()
        .iter()
        .map(|&v| (1.0 + (v as f64).abs()).ln())
        .collect();
    let (counts, fails) = parallel_counts(n, trials, |t| {
        let mut s = RejectionGSampler::log_sampler(n, 1000, 0xE10_000 + t * 13);
        s.ingest_vector(&x);
        s.sample().map(|smp| smp.index as usize)
    });
    law_row(
        &mut table,
        "log(1+|z|)",
        "spread",
        &weights,
        &counts,
        fails,
        trials,
    );
    table
}

/// E11: the cap G-sampler across thresholds.
pub fn e11_cap(quick: bool) -> Table {
    let trials: u64 = if quick { 4_000 } else { 20_000 };
    let mut table = law_table();
    let x = FrequencyVector::from_values(vec![1, 2, -3, 10, 0, 5, -8, 2]);
    let n = x.n();
    for t_cap in [4.0f64, 16.0, 64.0] {
        let weights: Vec<f64> = x
            .values()
            .iter()
            .map(|&v| ((v as f64).abs().powi(2)).min(t_cap))
            .collect();
        let (counts, fails) = parallel_counts(n, trials, |t| {
            let mut s =
                RejectionGSampler::cap_sampler(n, t_cap, 2.0, 0xE11_000 + t * 17 + t_cap as u64);
            s.ingest_vector(&x);
            s.sample().map(|smp| smp.index as usize)
        });
        law_row(
            &mut table,
            &format!("cap T={t_cap} p=2"),
            "mixed",
            &weights,
            &counts,
            fails,
            trials,
        );
    }
    table
}

/// E12: Huber / Fair / L1−L2 M-estimators through the rejection framework.
pub fn e12_m_estimators(quick: bool) -> Table {
    let trials: u64 = if quick { 4_000 } else { 20_000 };
    let mut table = law_table();
    let x = FrequencyVector::from_values(vec![1, -2, 5, 20, 0, 3, 9, -12]);
    let n = x.n();
    let bound = 20u64;
    let tau = 3.0;

    let huber = move |z: f64| {
        let a = z.abs();
        if a <= tau {
            a * a / (2.0 * tau)
        } else {
            a - tau / 2.0
        }
    };
    let fair = move |z: f64| {
        let a = z.abs();
        tau * a - tau * tau * (1.0 + a / tau).ln()
    };
    let l1l2 = |z: f64| 2.0 * ((1.0 + z * z / 2.0).sqrt() - 1.0);

    type Maker = Box<dyn Fn(u64) -> RejectionGSampler + Sync>;
    #[allow(clippy::type_complexity)]
    let entries: Vec<(&str, Box<dyn Fn(f64) -> f64>, Maker)> = vec![
        (
            "huber τ=3",
            Box::new(huber),
            Box::new(move |s| RejectionGSampler::huber_sampler(n, tau, bound, s)),
        ),
        (
            "fair τ=3",
            Box::new(fair),
            Box::new(move |s| RejectionGSampler::fair_sampler(n, tau, bound, s)),
        ),
        (
            "l1-l2",
            Box::new(l1l2),
            Box::new(move |s| RejectionGSampler::l1l2_sampler(n, bound, s)),
        ),
    ];
    for (name, g, maker) in &entries {
        let weights: Vec<f64> = x.values().iter().map(|&v| g(v as f64)).collect();
        let (counts, fails) = parallel_counts(n, trials, |t| {
            let mut s = maker(0xE12_000 + t * 19);
            s.ingest_vector(&x);
            s.sample().map(|smp| smp.index as usize)
        });
        law_row(&mut table, name, "mixed", &weights, &counts, fails, trials);
    }
    table
}
