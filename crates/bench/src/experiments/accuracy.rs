//! Accuracy experiments: E3 ((1+ε) value estimates) and E9 (subset-norm
//! estimation vs the CountSketch baseline).

use crate::runner::parallel_values;
use pts_core::{SubsetNormEstimator, SubsetNormParams};
use pts_samplers::{LpLe2Batch, LpLe2Params, TurnstileSampler};
use pts_sketch::{CountSketch, CountSketchParams, LinearSketch};
use pts_stream::gen::{rfds_split, zipf_vector};
use pts_util::stats::{mean, quantile};
use pts_util::table::{fmt_bits, fmt_sig};
use pts_util::Table;

/// E3: the sampled-value estimate error as the sketch width grows like
/// `ε^{-2}` (Theorem 1.2's second clause, via the inner L₂ machinery).
pub fn e3_estimates(quick: bool) -> Table {
    let n = 64;
    let x = zipf_vector(n, 1.0, 200, 301);
    let trials: u64 = if quick { 600 } else { 4_000 };
    let mut table = Table::new([
        "target eps",
        "buckets",
        "space",
        "median rel err",
        "p90 rel err",
        "within eps",
    ]);
    for eps in [0.5f64, 0.2, 0.1, 0.05] {
        // Width scales as ε^{-2} (paper: extra ε^{-2}·n^{1−2/p} bits).
        let mut params = LpLe2Params::for_universe(n, 2.0);
        params.buckets = ((4.0 / (eps * eps)).ceil() as usize).max(64);
        let errs = parallel_values(trials, |t| {
            let mut s = LpLe2Batch::new(n, params, 8, 0xE3_000 + t * 23);
            s.ingest_vector(&x);
            match s.sample() {
                Some(sample) => {
                    let truth = x.value(sample.index) as f64;
                    ((sample.estimate - truth) / truth).abs()
                }
                None => f64::NAN,
            }
        });
        let within = errs.iter().filter(|&&e| e <= eps).count() as f64 / errs.len() as f64;
        let space = LpLe2Batch::new(n, params, 8, 0).space_bits();
        table.push_row([
            format!("{eps}"),
            params.buckets.to_string(),
            fmt_bits(space),
            fmt_sig(quantile(&errs, 0.5), 3),
            fmt_sig(quantile(&errs, 0.9), 3),
            fmt_sig(within, 3),
        ]);
    }
    table
}

/// E9: subset-norm estimation — accuracy vs (α, ε) and space vs a
/// CountSketch baseline tuned to matching error.
pub fn e9_subset_norm(quick: bool) -> Table {
    let n = 64;
    let p = 3.0;
    let x = zipf_vector(n, 1.0, 150, 401);
    let fp = x.fp_moment(p);
    let trials: u64 = if quick { 8 } else { 24 };
    let mut table = Table::new([
        "query",
        "alpha",
        "eps",
        "reps",
        "space",
        "mean rel err",
        "p90 rel err",
    ]);
    // Two query regimes: heavy half (large α) and a sparse slice (small α).
    let mut by_mag: Vec<u64> = (0..n as u64).collect();
    by_mag.sort_by_key(|&i| std::cmp::Reverse(x.value(i).abs()));
    let (kept, _) = rfds_split(n, 0.5, 402);
    let queries: Vec<(&str, Vec<u64>)> =
        vec![("heavy-16", by_mag[..16].to_vec()), ("rfds-half", kept)];
    for (qname, q) in &queries {
        let truth = x.subset_fp(q, p);
        let alpha = truth / fp;
        for eps in [0.3f64, 0.15] {
            let params = SubsetNormParams::for_universe(n, p, eps, alpha.min(1.0));
            let errs = parallel_values(trials, |t| {
                let mut est = SubsetNormEstimator::new(n, params, 0xE9_000 + t * 29);
                est.ingest_vector(&x);
                let got = est.query(q);
                ((got - truth) / truth).abs()
            });
            let space = SubsetNormEstimator::new(n, params, 0).space_bits();
            table.push_row([
                qname.to_string(),
                fmt_sig(alpha, 3),
                format!("{eps}"),
                params.repetitions.to_string(),
                fmt_bits(space),
                fmt_sig(mean(&errs), 3),
                fmt_sig(quantile(&errs, 0.9), 3),
            ]);
        }
    }
    // Baseline: decode-and-sum CountSketch. At laptop n any table wider
    // than the universe is exact, so sweep genuinely sublinear widths to
    // expose the baseline's error-vs-space curve (its width requirement
    // scales as 1/(α²ε²) vs our repetitions' 1/(αε²) — the Theorem 1.6
    // separation; absolute space at toy n is dominated by polylog
    // constants, see DESIGN.md §7).
    let q = &queries[0].1;
    let truth = x.subset_fp(q, p);
    for buckets in [16usize, 32, 64] {
        let errs = parallel_values(trials, |t| {
            let mut cs = CountSketch::new(CountSketchParams { rows: 5, buckets }, 0xBA5E + t);
            cs.ingest_vector(&x);
            let got: f64 = q.iter().map(|&i| cs.estimate(i).abs().powf(p)).sum();
            ((got - truth) / truth).abs()
        });
        let space = CountSketch::new(CountSketchParams { rows: 5, buckets }, 0).space_bits();
        table.push_row([
            "heavy-16 (CS baseline)".to_string(),
            String::new(),
            String::new(),
            String::new(),
            fmt_bits(space),
            fmt_sig(mean(&errs), 3),
            fmt_sig(quantile(&errs, 0.9), 3),
        ]);
    }
    table
}
