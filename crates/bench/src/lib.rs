//! # pts-bench
//!
//! The experiment harness regenerating every table and figure of the paper
//! (DESIGN.md §5 / EXPERIMENTS.md): parallel trial runners, the experiment
//! registry, and the `reproduce` binary that prints each experiment as a
//! markdown table. Criterion micro-benchmarks live in `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod experiments;
pub mod json;
pub mod runner;

pub use experiments::{registry, Experiment};
