//! Machine-readable experiment output: one `BENCH_<id>.json` per run.
//!
//! The CI perf trajectory needs numbers a script can diff, not markdown a
//! human must re-parse. Each document carries the experiment id, title,
//! mode, wall-clock seconds, and the full table (header + rows) exactly as
//! rendered. Hand-rolled serialization — the only JSON this workspace emits
//! is flat strings and numbers, which does not justify a serde dependency
//! (the build environment has no registry access anyway).

use pts_util::Table;
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal (quotes, backslashes,
/// control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn string_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|c| format!("\"{}\"", escape(c))).collect();
    format!("[{}]", cells.join(","))
}

/// Renders one experiment run as a standalone JSON document.
pub fn experiment_json(
    id: &str,
    title: &str,
    mode: &str,
    seconds: f64,
    table: &Table,
    notes: &str,
) -> String {
    experiment_json_parts(
        id,
        title,
        mode,
        seconds,
        table.header(),
        table.rows(),
        false,
        notes,
    )
}

/// The general renderer behind [`experiment_json`]: raw header + rows, plus
/// the `incomplete` marker. An incomplete document is what `reproduce
/// --json` salvages when an experiment panics mid-run — the rows completed
/// before the panic, flagged `"incomplete": true` so a perf-trajectory
/// script never mistakes a partial table for the full record. `notes`
/// carries run-level context (today: the pts-analyze invariant summary);
/// empty notes omit the field entirely so old artifact consumers see an
/// unchanged shape.
#[allow(clippy::too_many_arguments)]
pub fn experiment_json_parts(
    id: &str,
    title: &str,
    mode: &str,
    seconds: f64,
    header: &[String],
    rows: &[Vec<String>],
    incomplete: bool,
    notes: &str,
) -> String {
    let rows: Vec<String> = rows.iter().map(|r| string_array(r)).collect();
    let incomplete_field = if incomplete {
        "\n  \"incomplete\": true,"
    } else {
        ""
    };
    let notes_field = if notes.is_empty() {
        String::new()
    } else {
        format!("\n  \"notes\": \"{}\",", escape(notes))
    };
    format!(
        "{{\n  \"id\": \"{}\",\n  \"title\": \"{}\",\n  \"mode\": \"{}\",{}{}\n  \
         \"seconds\": {:.3},\n  \"header\": {},\n  \"rows\": [{}]\n}}\n",
        escape(id),
        escape(title),
        escape(mode),
        incomplete_field,
        notes_field,
        seconds,
        string_array(header),
        rows.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn complete_documents_omit_the_incomplete_marker() {
        let mut t = Table::new(["n"]);
        t.push_row(["1"]);
        let doc = experiment_json("s1", "t", "quick", 0.1, &t, "");
        assert!(!doc.contains("incomplete"), "{doc}");
        assert!(!doc.contains("notes"), "{doc}");
    }

    #[test]
    fn notes_render_when_present_and_vanish_when_empty() {
        let mut t = Table::new(["n"]);
        t.push_row(["1"]);
        let doc = experiment_json("s1", "t", "quick", 0.1, &t, "invariants: clean (6 passes)");
        assert!(
            doc.contains("\"notes\": \"invariants: clean (6 passes)\""),
            "{doc}"
        );
        assert_eq!(doc.matches('{').count(), doc.matches('}').count(), "{doc}");
    }

    #[test]
    fn partial_documents_carry_the_incomplete_marker() {
        let header = vec!["n".to_string(), "rate".to_string()];
        let rows = vec![vec!["1024".to_string(), "3.5e6".to_string()]];
        let doc = experiment_json_parts("s1", "t", "quick", 0.5, &header, &rows, true, "");
        assert!(doc.contains("\"incomplete\": true"), "{doc}");
        assert!(doc.contains("[\"1024\",\"3.5e6\"]"), "{doc}");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count(), "{doc}");
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn renders_parseable_shape() {
        let mut t = Table::new(["n", "rate"]);
        t.push_row(["1024", "3.5e6"]);
        let doc = experiment_json("s1", "title \"quoted\"", "quick", 1.25, &t, "");
        assert!(doc.contains("\"id\": \"s1\""));
        assert!(doc.contains("\\\"quoted\\\""));
        assert!(doc.contains("[\"1024\",\"3.5e6\"]"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count(), "{doc}");
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }
}
