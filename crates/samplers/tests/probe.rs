// temporary probe appended as integration test
use pts_samplers::{LpLe2Batch, LpLe2Params, TurnstileSampler};
use pts_stream::FrequencyVector;

#[test]
#[ignore]
fn probe_l2_bias() {
    let x = FrequencyVector::from_values(vec![10, -20, 30, 5, 0, 15]);
    let weights = x.lp_weights(2.0);
    let total: f64 = weights.iter().sum();
    let trials = 40_000u64;
    let mut counts = [0u64; 6];
    let mut fails = 0u64;
    // Also: condition fail on true argmax identity
    let mut fail_by_winner = [0u64; 6];
    let mut trials_by_winner = [0u64; 6];
    for t in 0..trials {
        let mut b = LpLe2Batch::new(6, LpLe2Params::for_universe(6, 2.0), 1, 555_000 + t);
        b.ingest_vector(&x);
        // true argmax of instance 0's scaled vector
        let inst = b.instance(0);
        let mut best = (0usize, f64::MIN);
        for i in 0..6u64 {
            let z = (x.value(i) as f64 * inst.scale(i)).abs();
            if z > best.1 {
                best = (i as usize, z);
            }
        }
        trials_by_winner[best.0] += 1;
        match b.sample() {
            Some(s) => counts[s.index as usize] += 1,
            None => {
                fails += 1;
                fail_by_winner[best.0] += 1;
            }
        }
    }
    println!("fail rate overall: {:.4}", fails as f64 / trials as f64);
    let got: u64 = counts.iter().sum();
    for i in 0..6 {
        let ideal = weights[i] / total;
        let emp = counts[i] as f64 / got as f64;
        let failr = if trials_by_winner[i] > 0 {
            fail_by_winner[i] as f64 / trials_by_winner[i] as f64
        } else {
            f64::NAN
        };
        println!(
            "i={} ideal={:.4} emp={:.4} rel={:+.3} winner_trials={} cond_fail={:.3}",
            i,
            ideal,
            emp,
            (emp - ideal) / ideal.max(1e-12),
            trials_by_winner[i],
            failr
        );
    }
}
