//! Perfect L_p sampling for `p ∈ (0, 2]` on turnstile streams — our
//! instantiation of the JW18 sampler (Theorem 1.10), the substrate
//! Algorithms 1–3 consume as a black box.
//!
//! Construction. Scale every coordinate by an inverse exponential,
//! `z_i = x_i · (n^c / e_i)^{1/p}` with `e_i ~ Exp(1)` keyed per index.
//! Lemma 1.16: `Pr[argmax_i |z_i| = i] = |x_i|^p / ‖x‖_p^p` **exactly** —
//! perfectness lives in the scaling, and the `n^c` factor is the paper's
//! duplication applied through max-stability (Prop 1.13): the largest of the
//! `n^c` virtual copies of `i` is `x_i (n^c/e_i)^{1/p}` in distribution.
//!
//! The sketch part: one CountSketch over `z` recovers the argmax (the max is
//! an L₂ heavy hitter of `z` by Lemma 1.17) and doubles as an `F₂(z)`
//! estimator (row sums of squared cells are unbiased for `‖z‖₂²` — the
//! signs make cross terms vanish), which calibrates the anti-concentration
//! gap test: FAIL unless `|ẑ_(1)| − |ẑ_(2)| > τ·μ·‖z‖₂/√buckets`, with
//! `μ ~ U[½, 3/2]` smoothing the threshold exactly as Algorithm 4 does.
//!
//! Duplication in the gap test. The paper's reason for duplicating is that
//! `Pr[FAIL | D(1) = i]` must not depend on `i` (§3's `(100n, 1, …, 1)`
//! example). We reproduce the decoupling device exactly where it bites: the
//! "second max" in the gap test is the larger of (a) the best *other* index
//! and (b) the **second-largest virtual copy of the winner itself** — by the
//! order statistics of `n^c` i.i.d. exponentials the top two copies of `i`
//! are `x_i (n^c/e_i)^{1/p}` and `x_i (n^c/(e_i+e'_i))^{1/p}` with fresh
//! `e'_i ~ Exp(1)`. When one coordinate dominates, the gap is then governed
//! by `(E₁, E₂)` alone, independent of which index won. The duplicated
//! *bucket noise* (Lemma 3.8's full tail) is not simulated here; ablation A1
//! measures the residual conditional-failure dependence as `dup_c` varies.

use crate::traits::{Sample, TurnstileSampler};
use pts_sketch::{CountSketch, CountSketchParams, LinearSketch};
use pts_stream::Update;
use pts_util::variates::keyed_exponential;
use pts_util::wire::{Decode, Encode, WireError, WireReader, WireWriter};
use pts_util::{derive_seed, keyed_u64};

/// Parameters for [`PerfectLpLe2Sampler`].
#[derive(Debug, Clone, Copy)]
pub struct LpLe2Params {
    /// The moment order `p ∈ (0, 2]`.
    pub p: f64,
    /// CountSketch rows.
    pub rows: usize,
    /// CountSketch buckets per row (`Θ(log² n)` for the heavy-hitter
    /// guarantee; more buckets tighten the value estimate).
    pub buckets: usize,
    /// Duplication exponent `c ≥ 0`: virtual universe `n^{c+1}` applied via
    /// max-stability.
    pub dup_c: f64,
    /// Gap-test strictness `τ`: larger τ fails more often but guarantees the
    /// recovered argmax harder.
    pub test_factor: f64,
    /// Extra independent CountSketch instances over the same scaled vector,
    /// for the near-unbiased estimates Algorithms 1–2 need (may be 0).
    pub extra_estimators: usize,
}

impl LpLe2Params {
    /// Paper-shaped defaults for universe `n`: `Θ(log² n)` buckets,
    /// `Θ(log n)` rows, duplication `c = 1`, no extra estimators.
    pub fn for_universe(n: usize, p: f64) -> Self {
        assert!(p > 0.0 && p <= 2.0, "this sampler handles p in (0,2]");
        let log2n = (n.max(4) as f64).log2();
        Self {
            p,
            rows: (log2n.ceil() as usize).clamp(3, 9) | 1,
            buckets: ((16.0 * log2n * log2n).ceil() as usize).max(64),
            dup_c: 1.0,
            test_factor: 4.0,
            extra_estimators: 0,
        }
    }

    /// Same, with `extra` additional estimator instances.
    pub fn with_extra_estimators(mut self, extra: usize) -> Self {
        self.extra_estimators = extra;
        self
    }
}

/// The perfect L_p (p ≤ 2) sampler.
#[derive(Debug, Clone)]
pub struct PerfectLpLe2Sampler {
    params: LpLe2Params,
    universe: usize,
    /// Common duplication factor `(n^c)^{1/p}` folded into every scale.
    dup_factor: f64,
    scale_seed: u64,
    /// Seed for the winner's second-copy exponential `e'_i`.
    second_copy_seed: u64,
    main: CountSketch,
    extra: Vec<CountSketch>,
    /// Threshold smoother `μ ∈ [½, 3/2]`, drawn at construction.
    mu: f64,
}

impl PerfectLpLe2Sampler {
    /// Builds the sampler over universe `[0, n)`.
    ///
    /// # Panics
    /// Panics if `p ∉ (0, 2]` or the configuration is degenerate.
    pub fn new(n: usize, params: LpLe2Params, seed: u64) -> Self {
        assert!(
            params.p > 0.0 && params.p <= 2.0,
            "p must lie in (0, 2], got {}",
            params.p
        );
        assert!(params.dup_c >= 0.0, "duplication exponent must be >= 0");
        assert!(n >= 2, "universe too small");
        let cs_params = CountSketchParams {
            rows: params.rows,
            buckets: params.buckets,
        };
        let main = CountSketch::new(cs_params, derive_seed(seed, 1));
        let extra = (0..params.extra_estimators)
            .map(|k| CountSketch::new(cs_params, derive_seed(seed, 100 + k as u64)))
            .collect();
        let mu = 0.5 + (keyed_u64(seed, 0x3B5) as f64 / u64::MAX as f64);
        let dup_factor = (n as f64).powf(params.dup_c / params.p);
        Self {
            params,
            universe: n,
            dup_factor,
            scale_seed: derive_seed(seed, 0xE4B),
            second_copy_seed: derive_seed(seed, 0x2ED),
            main,
            extra,
            mu,
        }
    }

    /// The (strictly positive) scale factor of index `i`:
    /// `(n^c / e_i)^{1/p}`.
    #[inline]
    pub fn scale(&self, i: u64) -> f64 {
        self.dup_factor / keyed_exponential(self.scale_seed, i).powf(1.0 / self.params.p)
    }

    /// Number of extra estimator instances.
    pub fn extra_count(&self) -> usize {
        self.extra.len()
    }

    /// Near-unbiased estimate of `x_i` from extra instance `k`
    /// (CountSketch estimates are unbiased; dividing by the known scale
    /// keeps them so).
    ///
    /// # Panics
    /// Panics if `k` is out of range.
    pub fn unbiased_estimate(&self, k: usize, i: u64) -> f64 {
        self.extra[k].estimate(i) / self.scale(i)
    }

    /// Mean of extra instances `[from, to)` — the "mean of polylog(n)
    /// CountSketch instances" of Algorithm 1 line 9 / Algorithm 2 line 12.
    ///
    /// # Panics
    /// Panics if the range is empty or out of bounds.
    pub fn mean_estimate(&self, from: usize, to: usize, i: u64) -> f64 {
        assert!(from < to && to <= self.extra.len(), "bad estimator range");
        let scale = self.scale(i);
        let sum: f64 = self.extra[from..to].iter().map(|cs| cs.estimate(i)).sum();
        sum / ((to - from) as f64 * scale)
    }

    /// `F₂(z)` estimate read off the main table: median over rows of
    /// `Σ_b A_{r,b}²` (unbiased per row, cross terms cancel in expectation).
    /// Not used by the gap test (see `sample` for why); exposed for
    /// diagnostics and the threshold-calibration ablation.
    pub fn scaled_f2_estimate(&self) -> f64 {
        let rows = self.params.rows;
        let buckets = self.params.buckets;
        let table = self.main.table();
        let mut row_sums: Vec<f64> = (0..rows)
            .map(|r| {
                table[r * buckets..(r + 1) * buckets]
                    .iter()
                    .map(|c| c * c)
                    .sum()
            })
            .collect();
        row_sums.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        row_sums[rows / 2]
    }

    /// The decoded top-two magnitudes of the scaled vector.
    fn top_two(&self) -> ((u64, f64), f64) {
        let mut best_i = 0u64;
        let mut best = f64::NEG_INFINITY;
        let mut best_signed = 0.0;
        let mut second = f64::NEG_INFINITY;
        for i in 0..self.universe as u64 {
            let est = self.main.estimate(i);
            let mag = est.abs();
            if mag > best {
                second = best;
                best = mag;
                best_i = i;
                best_signed = est;
            } else if mag > second {
                second = mag;
            }
        }
        ((best_i, best_signed), second.max(0.0))
    }
}

impl TurnstileSampler for PerfectLpLe2Sampler {
    #[inline]
    fn process(&mut self, u: Update) {
        if u.delta == 0 {
            return;
        }
        let scaled = u.delta as f64 * self.scale(u.index);
        self.main.update(u.index, scaled);
        for cs in &mut self.extra {
            cs.update(u.index, scaled);
        }
    }

    fn sample(&mut self) -> Option<Sample> {
        let ((i_star, z_hat), second) = self.top_two();
        if z_hat == 0.0 {
            return None;
        }
        // Duplication: the winner's own second-largest virtual copy competes
        // in the gap test. Top two of n^c exponentials are e_i/n^c and
        // (e_i + e'_i)/n^c, so the copy ratio is (e_i/(e_i+e'_i))^{1/p}.
        let second = if self.params.dup_c > 0.0 {
            let e = keyed_exponential(self.scale_seed, i_star);
            let e2 = keyed_exponential(self.second_copy_seed, i_star);
            let own_second = z_hat.abs() * (e / (e + e2)).powf(1.0 / self.params.p);
            second.max(own_second)
        } else {
            second
        };
        // Threshold calibration must not leak the winner's identity — the
        // tail F₂ conditioned on `D(1) = i` shifts with `‖x_{-i}‖` and would
        // bias the FAIL event exactly as §3 warns. We calibrate on `|ẑ_(1)|`
        // alone: its law is identity-independent (Lemma 1.16), and by the
        // heavy-hitter property (Lemma 1.17) it dominates the true decode
        // noise `‖z_tail‖/√buckets` up to the log factors absorbed in τ.
        // `scaled_f2_estimate` stays available for diagnostics/ablations.
        let noise = z_hat.abs() / (self.params.buckets as f64).sqrt();
        let gap = z_hat.abs() - second;
        // Anti-concentration test: the decoded argmax is trustworthy only
        // when the gap clears the CountSketch noise floor.
        if gap <= self.params.test_factor * self.mu * noise {
            return None;
        }
        Some(Sample {
            index: i_star,
            estimate: z_hat / self.scale(i_star),
        })
    }

    fn space_bits(&self) -> usize {
        self.main.space_bits()
            + self
                .extra
                .iter()
                .map(LinearSketch::space_bits)
                .sum::<usize>()
            + 128
    }

    /// Merges a shard sampler built with the same parameters and seed: the
    /// scaled sketches are linear, so shard-and-merge equals processing the
    /// concatenated stream (the distributed-databases deployment of §1.3).
    ///
    /// # Panics
    /// Panics if the shards were built with different seeds/parameters.
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.scale_seed, other.scale_seed, "seed mismatch");
        assert_eq!(self.universe, other.universe, "universe mismatch");
        assert_eq!(self.extra.len(), other.extra.len(), "estimator mismatch");
        self.main.merge(&other.main);
        for (a, b) in self.extra.iter_mut().zip(&other.extra) {
            a.merge(b);
        }
    }
}

impl Encode for LpLe2Params {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_f64(self.p);
        w.put_usize(self.rows);
        w.put_usize(self.buckets);
        w.put_f64(self.dup_c);
        w.put_f64(self.test_factor);
        w.put_usize(self.extra_estimators);
        Ok(())
    }
}

impl Decode for LpLe2Params {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let p = r.get_f64()?;
        let rows = r.get_usize()?;
        let buckets = r.get_usize()?;
        let dup_c = r.get_f64()?;
        let test_factor = r.get_f64()?;
        let extra_estimators = r.get_usize()?;
        // Ranges mirror the constructor asserts, turned into errors so a
        // hostile payload cannot reach a panicking constructor.
        let p_ok = p.is_finite() && p > 0.0 && p <= 2.0;
        let dup_ok = dup_c.is_finite() && dup_c >= 0.0;
        if !p_ok || !dup_ok || !test_factor.is_finite() {
            return Err(WireError::Invalid("lp-le2 parameters"));
        }
        if !(1..=1024).contains(&rows) || buckets == 0 || extra_estimators > 1 << 16 {
            return Err(WireError::Invalid("lp-le2 shape"));
        }
        Ok(Self {
            p,
            rows,
            buckets,
            dup_c,
            test_factor,
            extra_estimators,
        })
    }
}

impl Encode for PerfectLpLe2Sampler {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        self.params.encode(w)?;
        w.put_usize(self.universe);
        w.put_f64(self.dup_factor);
        w.put_u64(self.scale_seed);
        w.put_u64(self.second_copy_seed);
        w.put_f64(self.mu);
        self.main.encode(w)?;
        for cs in &self.extra {
            cs.encode(w)?;
        }
        Ok(())
    }
}

impl Decode for PerfectLpLe2Sampler {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let params = LpLe2Params::decode(r)?;
        let universe = r.get_usize()?;
        if universe < 2 {
            return Err(WireError::Invalid("lp-le2 universe"));
        }
        let dup_factor = r.get_f64()?;
        let scale_seed = r.get_u64()?;
        let second_copy_seed = r.get_u64()?;
        let mu = r.get_f64()?;
        let main = CountSketch::decode(r)?;
        let mut extra = Vec::with_capacity(params.extra_estimators);
        for _ in 0..params.extra_estimators {
            extra.push(CountSketch::decode(r)?);
        }
        Ok(Self {
            params,
            universe,
            dup_factor,
            scale_seed,
            second_copy_seed,
            main,
            extra,
            mu,
        })
    }
}

impl Encode for LpLe2Batch {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_usize(self.instances.len());
        for inst in &self.instances {
            inst.encode(w)?;
        }
        Ok(())
    }
}

impl Decode for LpLe2Batch {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let k = r.get_len(16)?;
        if k == 0 {
            return Err(WireError::Invalid("empty lp-le2 batch"));
        }
        let mut instances = Vec::with_capacity(k);
        for _ in 0..k {
            instances.push(PerfectLpLe2Sampler::decode(r)?);
        }
        Ok(Self { instances })
    }
}

/// A success-boosted perfect L_p (p ≤ 2) sample: `k` independent sampler
/// instances, first non-FAIL wins. Failure probability decays as
/// `δ^k` (Theorem 1.10's `log(1/δ₁)` factor).
#[derive(Debug, Clone)]
pub struct LpLe2Batch {
    instances: Vec<PerfectLpLe2Sampler>,
}

impl LpLe2Batch {
    /// `k` independent instances.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(n: usize, params: LpLe2Params, k: usize, seed: u64) -> Self {
        assert!(k >= 1, "batch needs at least one instance");
        let instances = (0..k)
            .map(|j| PerfectLpLe2Sampler::new(n, params, derive_seed(seed, j as u64)))
            .collect();
        Self { instances }
    }

    /// Immutable access to the instance that produced a sample, for
    /// follow-up estimate queries.
    pub fn instance(&self, j: usize) -> &PerfectLpLe2Sampler {
        &self.instances[j]
    }

    /// Draws the first successful sample, returning the winning instance's
    /// index alongside it.
    pub fn sample_with_instance(&mut self) -> Option<(usize, Sample)> {
        for j in 0..self.instances.len() {
            if let Some(s) = self.instances[j].sample() {
                return Some((j, s));
            }
        }
        None
    }
}

impl TurnstileSampler for LpLe2Batch {
    fn process(&mut self, u: Update) {
        for inst in &mut self.instances {
            inst.process(u);
        }
    }

    fn sample(&mut self) -> Option<Sample> {
        self.sample_with_instance().map(|(_, s)| s)
    }

    fn space_bits(&self) -> usize {
        self.instances
            .iter()
            .map(TurnstileSampler::space_bits)
            .sum()
    }

    /// Merges instance-wise (both batches must share seed and shape).
    fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.instances.len(),
            other.instances.len(),
            "batch size mismatch"
        );
        for (a, b) in self.instances.iter_mut().zip(&other.instances) {
            a.merge(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_stream::gen::zipf_vector;
    use pts_stream::{FrequencyVector, Stream, StreamStyle};
    use pts_util::stats::{chi_square_test, tv_distance};

    fn sample_distribution(
        x: &FrequencyVector,
        p: f64,
        trials: u64,
        seed0: u64,
    ) -> (Vec<u64>, u64) {
        let n = x.n();
        let params = LpLe2Params::for_universe(n, p);
        let mut counts = vec![0u64; n];
        let mut fails = 0;
        for t in 0..trials {
            let mut b = LpLe2Batch::new(n, params, 8, seed0 + t);
            b.ingest_vector(x);
            match b.sample() {
                Some(s) => counts[s.index as usize] += 1,
                None => fails += 1,
            }
        }
        (counts, fails)
    }

    #[test]
    fn l2_law_on_small_vector() {
        let x = FrequencyVector::from_values(vec![10, -20, 30, 5, 0, 15]);
        let weights = x.lp_weights(2.0);
        let (counts, fails) = sample_distribution(&x, 2.0, 4_000, 1);
        assert!(fails < 200, "fails {fails}");
        let tv = tv_distance(&counts, &weights);
        assert!(tv < 0.035, "tv {tv}");
        let probs: Vec<f64> = weights.iter().map(|w| w / x.fp_moment(2.0)).collect();
        let chi = chi_square_test(&counts, &probs, 5.0);
        assert!(chi.p_value > 1e-4, "chi2 p {}", chi.p_value);
    }

    #[test]
    fn l1_law_on_small_vector() {
        let x = FrequencyVector::from_values(vec![1, 2, 3, 4, 10]);
        let weights = x.lp_weights(1.0);
        let (counts, fails) = sample_distribution(&x, 1.0, 4_000, 50_000);
        assert!(fails < 400, "fails {fails}");
        let tv = tv_distance(&counts, &weights);
        assert!(tv < 0.04, "tv {tv}");
    }

    #[test]
    fn estimates_are_accurate_when_sampled() {
        let x = zipf_vector(64, 1.1, 200, 3);
        for t in 0..200u64 {
            let mut b = LpLe2Batch::new(64, LpLe2Params::for_universe(64, 2.0), 8, 90_000 + t);
            b.ingest_vector(&x);
            if let Some(s) = b.sample() {
                let truth = x.value(s.index) as f64;
                let rel = (s.estimate - truth).abs() / truth.abs().max(1.0);
                assert!(rel < 0.35, "trial {t}: est {} vs {truth}", s.estimate);
            }
        }
    }

    #[test]
    fn extra_estimators_are_near_unbiased() {
        let x = zipf_vector(64, 1.0, 100, 4);
        let i = 7u64;
        let truth = x.value(i) as f64;
        let reps = 300;
        let mut sum = 0.0;
        for t in 0..reps {
            let params = LpLe2Params::for_universe(64, 2.0).with_extra_estimators(4);
            let mut s = PerfectLpLe2Sampler::new(64, params, 70_000 + t);
            s.ingest_vector(&x);
            sum += s.mean_estimate(0, 4, i);
        }
        let mean = sum / reps as f64;
        assert!(
            (mean - truth).abs() / truth.abs() < 0.1,
            "mean {mean} vs {truth}"
        );
    }

    #[test]
    fn zero_vector_always_fails() {
        let mut s = PerfectLpLe2Sampler::new(16, LpLe2Params::for_universe(16, 2.0), 5);
        assert!(s.sample().is_none());
        s.process(Update::new(3, 7));
        s.process(Update::new(3, -7));
        assert!(s.sample().is_none());
    }

    #[test]
    fn stream_vs_vector_agree() {
        let x = zipf_vector(64, 1.0, 80, 6);
        let mut rng = pts_util::Xoshiro256pp::new(7);
        let stream = Stream::from_target(&x, StreamStyle::Turnstile { churn: 1.0 }, &mut rng);
        let params = LpLe2Params::for_universe(64, 2.0);
        let mut a = PerfectLpLe2Sampler::new(64, params, 8);
        a.ingest_stream(&stream);
        let mut b = PerfectLpLe2Sampler::new(64, params, 8);
        b.ingest_vector(&x);
        // Same decision and index; estimates agree up to f64 associativity.
        match (a.sample(), b.sample()) {
            (None, None) => {}
            (Some(sa), Some(sb)) => {
                assert_eq!(sa.index, sb.index);
                assert!((sa.estimate - sb.estimate).abs() < 1e-6);
            }
            (a, b) => panic!("outcomes diverged: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn single_coordinate_always_wins() {
        // With duplication the winner's own second copy competes in the gap
        // test, so even a one-hot vector FAILs occasionally — but when a
        // sample is produced it must be the only non-zero coordinate.
        let mut x = vec![0i64; 32];
        x[13] = 999;
        let x = FrequencyVector::from_values(x);
        let mut successes = 0;
        for t in 0..100 {
            let mut b = LpLe2Batch::new(32, LpLe2Params::for_universe(32, 2.0), 8, 200 + t);
            b.ingest_vector(&x);
            if let Some(s) = b.sample() {
                assert_eq!(s.index, 13);
                successes += 1;
            }
        }
        assert!(successes >= 95, "successes {successes}/100");
    }

    #[test]
    fn scale_is_deterministic_and_positive() {
        let s = PerfectLpLe2Sampler::new(16, LpLe2Params::for_universe(16, 2.0), 9);
        for i in 0..16u64 {
            assert!(s.scale(i) > 0.0);
            assert_eq!(s.scale(i), s.scale(i));
        }
    }

    #[test]
    #[should_panic(expected = "p in (0,2]")]
    fn rejects_p_above_two() {
        let _ = LpLe2Params::for_universe(16, 3.0);
    }

    #[test]
    fn shard_merge_equals_whole_stream() {
        let x = zipf_vector(64, 1.0, 90, 14);
        let y = zipf_vector(64, 1.0, 90, 15);
        let params = LpLe2Params::for_universe(64, 2.0).with_extra_estimators(2);
        let mut whole = PerfectLpLe2Sampler::new(64, params, 77);
        whole.ingest_vector(&x.add(&y));
        let mut shard_a = PerfectLpLe2Sampler::new(64, params, 77);
        shard_a.ingest_vector(&x);
        let mut shard_b = PerfectLpLe2Sampler::new(64, params, 77);
        shard_b.ingest_vector(&y);
        shard_a.merge(&shard_b);
        match (whole.sample(), shard_a.sample()) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.index, b.index);
                assert!((a.estimate - b.estimate).abs() < 1e-6 * (1.0 + b.estimate.abs()));
            }
            (a, b) => panic!("merge diverged: {a:?} vs {b:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "seed mismatch")]
    fn merge_rejects_mismatched_seeds() {
        let params = LpLe2Params::for_universe(16, 2.0);
        let mut a = PerfectLpLe2Sampler::new(16, params, 1);
        let b = PerfectLpLe2Sampler::new(16, params, 2);
        a.merge(&b);
    }

    #[test]
    fn batch_space_scales_with_k() {
        let params = LpLe2Params::for_universe(64, 2.0);
        let b1 = LpLe2Batch::new(64, params, 1, 1);
        let b4 = LpLe2Batch::new(64, params, 4, 1);
        assert_eq!(b4.space_bits(), 4 * b1.space_bits());
    }
}
