//! Precision sampling: the *approximate* L_p sampler for `p ∈ (0, 2]`
//! (the \[JST11\]/\[AKO11\] row of Table 1).
//!
//! Each repetition scales `z_i = x_i / u_i^{1/p}` with `u_i ~ U(0,1)` keyed
//! per index. Coordinate `i` clears a threshold `t` iff `u_i ≤ (|x_i|/t)^p`,
//! an event of probability `|x_i|^p / t^p` — proportional to the target law.
//! With `t = (‖x‖_p / ε)^{1/p}`-style thresholds each repetition yields a
//! sample with probability `≈ ε`, and the relative distortion (from
//! CountSketch recovery error and multi-crossing collisions) is `O(ε)` —
//! the `(1±ε)` multiplicative error that separates *approximate* from
//! *perfect* samplers and that experiment T1 measures head-to-head.

use crate::traits::{Sample, TurnstileSampler};
use pts_sketch::{CountSketch, CountSketchParams, FpMaxStab, FpMaxStabParams, LinearSketch};
use pts_stream::Update;
use pts_util::derive_seed;
use pts_util::variates::keyed_unit;
use pts_util::wire::{Decode, Encode, WireError, WireReader, WireWriter};

/// Parameters for [`PrecisionSampler`].
#[derive(Debug, Clone, Copy)]
pub struct PrecisionParams {
    /// Moment order `p ∈ (0, 2]`.
    pub p: f64,
    /// Target relative distortion ε (drives the repetition count `Θ(1/ε)`).
    pub epsilon: f64,
    /// CountSketch rows per repetition.
    pub rows: usize,
    /// CountSketch buckets per repetition.
    pub buckets: usize,
}

impl PrecisionParams {
    /// Defaults for universe `n` at distortion `epsilon`.
    pub fn for_universe(n: usize, p: f64, epsilon: f64) -> Self {
        assert!(p > 0.0 && p <= 2.0, "precision sampler handles p in (0,2]");
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        let log2n = (n.max(4) as f64).log2();
        Self {
            p,
            epsilon,
            rows: 5,
            buckets: ((8.0 * log2n * log2n).ceil() as usize).max(32),
        }
    }
}

/// One scaling repetition: a CountSketch over the uniformly-scaled vector.
#[derive(Debug, Clone)]
struct Repetition {
    cs: CountSketch,
    scale_seed: u64,
}

/// The approximate precision sampler.
#[derive(Debug, Clone)]
pub struct PrecisionSampler {
    params: PrecisionParams,
    universe: usize,
    reps: Vec<Repetition>,
    norm_est: FpMaxStab,
}

impl PrecisionSampler {
    /// Builds the sampler over universe `[0, n)`; holds `⌈2/ε⌉` repetitions
    /// plus a norm estimator to place the threshold.
    pub fn new(n: usize, params: PrecisionParams, seed: u64) -> Self {
        assert!(n >= 2, "universe too small");
        let rep_count = (2.0 / params.epsilon).ceil() as usize;
        let cs_params = CountSketchParams {
            rows: params.rows,
            buckets: params.buckets,
        };
        let reps = (0..rep_count)
            .map(|r| Repetition {
                cs: CountSketch::new(cs_params, derive_seed(seed, 2 * r as u64)),
                scale_seed: derive_seed(seed, 2 * r as u64 + 1),
            })
            .collect();
        let norm_est = FpMaxStab::new(
            n,
            FpMaxStabParams::for_universe(n, params.p),
            derive_seed(seed, 0xF0E5),
        );
        Self {
            params,
            universe: n,
            reps,
            norm_est,
        }
    }

    #[inline]
    fn scale(&self, rep: usize, i: u64) -> f64 {
        1.0 / keyed_unit(self.reps[rep].scale_seed, i).powf(1.0 / self.params.p)
    }
}

impl TurnstileSampler for PrecisionSampler {
    fn process(&mut self, u: Update) {
        if u.delta == 0 {
            return;
        }
        for r in 0..self.reps.len() {
            let scaled = u.delta as f64 * self.scale(r, u.index);
            self.reps[r].cs.update(u.index, scaled);
        }
        self.norm_est.update(u.index, u.delta as f64);
    }

    fn sample(&mut self) -> Option<Sample> {
        let lp = self.norm_est.lp_estimate();
        if lp <= 0.0 {
            return None;
        }
        // Threshold: crossing probability for the whole vector is ≈ ε per
        // repetition, so some repetition succeeds with constant probability.
        let threshold = lp / self.params.epsilon.powf(1.0 / self.params.p);
        for r in 0..self.reps.len() {
            let (i, est) = self.reps[r].cs.argmax(self.universe);
            if est.abs() > threshold {
                return Some(Sample {
                    index: i,
                    estimate: est / self.scale(r, i),
                });
            }
        }
        None
    }

    fn space_bits(&self) -> usize {
        self.reps
            .iter()
            .map(|r| r.cs.space_bits() + 64)
            .sum::<usize>()
            + self.norm_est.space_bits()
    }

    /// Merges a same-seeded shard sampler (all repetitions and the norm
    /// estimator are linear sketches).
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        assert_eq!(self.reps.len(), other.reps.len(), "repetition mismatch");
        for (a, b) in self.reps.iter_mut().zip(&other.reps) {
            assert_eq!(a.scale_seed, b.scale_seed, "seed mismatch");
            a.cs.merge(&b.cs);
        }
        self.norm_est.merge(&other.norm_est);
    }
}

impl Encode for PrecisionSampler {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_f64(self.params.p);
        w.put_f64(self.params.epsilon);
        w.put_usize(self.params.rows);
        w.put_usize(self.params.buckets);
        w.put_usize(self.universe);
        w.put_usize(self.reps.len());
        for rep in &self.reps {
            rep.cs.encode(w)?;
            w.put_u64(rep.scale_seed);
        }
        self.norm_est.encode(w)
    }
}

impl Decode for PrecisionSampler {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let p = r.get_f64()?;
        let epsilon = r.get_f64()?;
        let rows = r.get_usize()?;
        let buckets = r.get_usize()?;
        let universe = r.get_usize()?;
        let p_ok = p.is_finite() && p > 0.0 && p <= 2.0;
        let eps_ok = epsilon.is_finite() && epsilon > 0.0 && epsilon < 1.0;
        if !p_ok || !eps_ok || universe < 2 {
            return Err(WireError::Invalid("precision parameters"));
        }
        let params = PrecisionParams {
            p,
            epsilon,
            rows,
            buckets,
        };
        let rep_count = r.get_len(16)?;
        if !(1..=1 << 16).contains(&rep_count) {
            return Err(WireError::Invalid("precision repetition count"));
        }
        let mut reps = Vec::with_capacity(rep_count);
        for _ in 0..rep_count {
            let cs = CountSketch::decode(r)?;
            let scale_seed = r.get_u64()?;
            reps.push(Repetition { cs, scale_seed });
        }
        let norm_est = FpMaxStab::decode(r)?;
        Ok(Self {
            params,
            universe,
            reps,
            norm_est,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_stream::FrequencyVector;
    use pts_util::stats::tv_distance;

    #[test]
    fn approximately_follows_lp_law() {
        let x = FrequencyVector::from_values(vec![5, -10, 20, 40, 2, 0, 8, 30]);
        let weights = x.lp_weights(2.0);
        let mut counts = vec![0u64; 8];
        let mut fails = 0u64;
        let trials = 3_000u64;
        for t in 0..trials {
            let mut s = PrecisionSampler::new(8, PrecisionParams::for_universe(8, 2.0, 0.3), t);
            s.ingest_vector(&x);
            match s.sample() {
                Some(sample) => counts[sample.index as usize] += 1,
                None => fails += 1,
            }
        }
        assert!(fails < trials / 2, "fails {fails}/{trials}");
        let tv = tv_distance(&counts, &weights);
        // Approximate sampler: distortion up to ~ε expected, but the law
        // must still be recognizably L2.
        assert!(tv < 0.15, "tv {tv}");
    }

    #[test]
    fn estimate_tracks_truth() {
        let x = FrequencyVector::from_values(vec![100, 50, -200, 25]);
        let mut hits = 0;
        for t in 0..200u64 {
            let mut s =
                PrecisionSampler::new(4, PrecisionParams::for_universe(4, 2.0, 0.3), 900 + t);
            s.ingest_vector(&x);
            if let Some(sample) = s.sample() {
                let truth = x.value(sample.index) as f64;
                let rel = (sample.estimate - truth).abs() / truth.abs();
                assert!(rel < 0.5, "estimate {} vs {truth}", sample.estimate);
                hits += 1;
            }
        }
        assert!(hits > 50, "hits {hits}");
    }

    #[test]
    fn empty_vector_fails() {
        let mut s = PrecisionSampler::new(8, PrecisionParams::for_universe(8, 2.0, 0.3), 3);
        assert!(s.sample().is_none());
    }

    #[test]
    fn smaller_epsilon_uses_more_space() {
        let coarse = PrecisionSampler::new(64, PrecisionParams::for_universe(64, 2.0, 0.5), 1);
        let fine = PrecisionSampler::new(64, PrecisionParams::for_universe(64, 2.0, 0.05), 1);
        assert!(fine.space_bits() > 5 * coarse.space_bits());
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        let _ = PrecisionParams::for_universe(8, 2.0, 0.0);
    }
}
