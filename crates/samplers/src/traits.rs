//! The sampler contract shared by every sampler in the stack.

use pts_stream::{FrequencyVector, Stream, Update};

/// A sample drawn from a stream: the index and (when the sampler provides
/// one) an estimate of its frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// The sampled coordinate.
    pub index: u64,
    /// The sampler's estimate of `x_index` (exact for L₀ samplers, `(1+ε)`
    /// for the L_p family, `NaN`-free always).
    pub estimate: f64,
}

/// A one-shot sampler over a turnstile stream.
///
/// Lifecycle: construct with a seed → feed every update → call
/// [`TurnstileSampler::sample`] once at the end of the stream. The outcome
/// is `Some(sample)` or `None` (the paper's FAIL symbol ⊥ — failing is part
/// of the contract, with bounded probability). Independent samples require
/// independent sampler instances (fresh seeds); the experiment harness runs
/// thousands of instances to measure the output law.
pub trait TurnstileSampler {
    /// Processes one turnstile update.
    fn process(&mut self, u: Update);

    /// Draws the sample (or FAIL) from the current state.
    fn sample(&mut self) -> Option<Sample>;

    /// Merges a same-seeded shard sampler into this one.
    ///
    /// Every sampler whose state is a linear sketch overrides this with a
    /// pointwise combine, making shard-and-merge exactly equivalent to one
    /// sampler seeing the whole stream (the §1.3 distributed deployment and
    /// the contract `pts-engine` is built on). The default panics: samplers
    /// that are not linear (e.g. the insertion-only reservoir baseline)
    /// cannot merge.
    ///
    /// # Panics
    /// Panics when the sampler is not mergeable, or when the shards were
    /// built with different seeds or parameters.
    fn merge(&mut self, _other: &Self)
    where
        Self: Sized,
    {
        unimplemented!("this sampler is not a linear sketch and cannot merge")
    }

    /// Information-theoretic sketch size in bits (see
    /// `pts_sketch::LinearSketch::space_bits` for the accounting rules).
    fn space_bits(&self) -> usize;

    /// Feeds a whole frequency vector (one bulk update per non-zero).
    fn ingest_vector(&mut self, x: &FrequencyVector) {
        for (i, v) in x.iter_nonzero() {
            self.process(Update::new(i, v));
        }
    }

    /// Replays a stream update-by-update.
    fn ingest_stream(&mut self, s: &Stream) {
        for u in s.iter() {
            self.process(*u);
        }
    }
}
