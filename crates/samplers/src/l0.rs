//! Perfect L₀ sampling on turnstile streams (JST11, Theorem 5.4).
//!
//! Outputs a uniformly random non-zero coordinate, **with its exact value**,
//! using `O(log² n)` space — the substrate for every G-sampler in §5
//! (log, cap, and the general rejection framework).
//!
//! Construction: geometric subsampling levels (level `l` keeps each index
//! with probability `2^{−l}`, nested) each feeding an exact
//! [`SparseRecovery`] structure. At query time the deepest level whose
//! subsampled vector is recoverable and non-empty reveals its full support
//! exactly; a keyed min-hash picks one member. Exchangeability of the
//! subsampling hash over non-zero indices makes the pick uniform.

use crate::traits::{Sample, TurnstileSampler};
use pts_sketch::{LinearSketch, SparseRecovery};
use pts_stream::Update;
use pts_util::wire::{Decode, Encode, WireError, WireReader, WireWriter};
use pts_util::{derive_seed, keyed_u64};

/// Parameters for [`PerfectL0Sampler`].
#[derive(Debug, Clone, Copy)]
pub struct L0Params {
    /// Sparsity budget per level (recovery succeeds when the subsampled
    /// support is at most this).
    pub sparsity: usize,
    /// Rows per sparse-recovery structure.
    pub rows: usize,
}

impl Default for L0Params {
    fn default() -> Self {
        Self {
            sparsity: 12,
            rows: 4,
        }
    }
}

/// The perfect L₀ sampler.
#[derive(Debug, Clone)]
pub struct PerfectL0Sampler {
    levels: Vec<SparseRecovery>,
    subsample_seed: u64,
    choice_seed: u64,
}

impl PerfectL0Sampler {
    /// Builds the sampler for universe `[0, n)`.
    pub fn new(n: usize, params: L0Params, seed: u64) -> Self {
        let level_count = ((n.max(2) as f64).log2().ceil() as usize) + 2;
        let levels = (0..level_count)
            .map(|l| SparseRecovery::new(params.sparsity, params.rows, derive_seed(seed, l as u64)))
            .collect();
        Self {
            levels,
            subsample_seed: derive_seed(seed, 0x5AB5),
            choice_seed: derive_seed(seed, 0xC01C),
        }
    }

    /// Whether index `i` survives subsampling at level `l` (nested: the
    /// survivor sets shrink as `l` grows).
    #[inline]
    fn survives(&self, i: u64, l: usize) -> bool {
        keyed_u64(self.subsample_seed, i) <= (u64::MAX >> l)
    }

    /// The deepest-to-shallowest scan: the first level (from the sparsest
    /// end) whose recovery succeeds with a non-empty support.
    fn recover_some_level(&self) -> Option<Vec<(u64, i64)>> {
        for sr in self.levels.iter().rev() {
            match sr.recover() {
                Some(support) if !support.is_empty() => return Some(support),
                _ => continue,
            }
        }
        None
    }
}

impl TurnstileSampler for PerfectL0Sampler {
    fn process(&mut self, u: Update) {
        if u.delta == 0 {
            return;
        }
        for l in 0..self.levels.len() {
            if self.survives(u.index, l) {
                self.levels[l].update_int(u.index, u.delta);
            } else {
                // Nested subsampling: once an index misses a level it misses
                // all deeper ones.
                break;
            }
        }
    }

    fn sample(&mut self) -> Option<Sample> {
        let support = self.recover_some_level()?;
        // Keyed min-hash pick: symmetric in the support, hence uniform over
        // non-zeros; deterministic given the construction randomness.
        let (&(index, value), _) = support
            .iter()
            .map(|entry| (entry, keyed_u64(self.choice_seed, entry.0)))
            .min_by_key(|&(_, h)| h)?;
        Some(Sample {
            index,
            estimate: value as f64,
        })
    }

    fn space_bits(&self) -> usize {
        self.levels
            .iter()
            .map(LinearSketch::space_bits)
            .sum::<usize>()
            + 128
    }

    /// Merges a same-seeded shard sampler: every subsampling level is an
    /// exact linear sketch, so the merged state equals one sampler over the
    /// concatenated stream.
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.subsample_seed, other.subsample_seed, "seed mismatch");
        assert_eq!(self.levels.len(), other.levels.len(), "level mismatch");
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            a.merge(b);
        }
    }
}

impl Encode for L0Params {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_usize(self.sparsity);
        w.put_usize(self.rows);
        Ok(())
    }
}

impl Decode for L0Params {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let sparsity = r.get_usize()?;
        let rows = r.get_usize()?;
        if !(1..=1 << 20).contains(&sparsity) || !(1..=1024).contains(&rows) {
            return Err(WireError::Invalid("l0 parameters"));
        }
        Ok(Self { sparsity, rows })
    }
}

impl Encode for PerfectL0Sampler {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        w.put_u64(self.subsample_seed);
        w.put_u64(self.choice_seed);
        w.put_usize(self.levels.len());
        for level in &self.levels {
            level.encode(w)?;
        }
        Ok(())
    }
}

impl Decode for PerfectL0Sampler {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let subsample_seed = r.get_u64()?;
        let choice_seed = r.get_u64()?;
        let level_count = r.get_len(8)?;
        if !(1..=128).contains(&level_count) {
            return Err(WireError::Invalid("l0 level count"));
        }
        let mut levels = Vec::with_capacity(level_count);
        for _ in 0..level_count {
            levels.push(SparseRecovery::decode(r)?);
        }
        Ok(Self {
            levels,
            subsample_seed,
            choice_seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_stream::gen::zipf_vector;
    use pts_stream::{FrequencyVector, Stream, StreamStyle};
    use pts_util::stats::tv_distance;

    #[test]
    fn returns_exact_values() {
        let x = FrequencyVector::from_values(vec![0, 7, 0, -3, 0, 0, 11, 0]);
        for t in 0..50 {
            let mut s = PerfectL0Sampler::new(8, L0Params::default(), t);
            s.ingest_vector(&x);
            let got = s.sample().expect("sparse vector must sample");
            assert_eq!(got.estimate, x.value(got.index) as f64, "trial {t}");
            assert_ne!(x.value(got.index), 0);
        }
    }

    #[test]
    fn uniform_over_support() {
        let mut values = vec![0i64; 64];
        // 8 non-zeros with wildly different magnitudes: L0 must ignore them.
        for (k, &i) in [3usize, 7, 12, 20, 33, 41, 50, 63].iter().enumerate() {
            values[i] = if k % 2 == 0 { 1 } else { -(1 << k as i64) };
        }
        let x = FrequencyVector::from_values(values);
        let uniform: Vec<f64> = x
            .values()
            .iter()
            .map(|&v| if v != 0 { 1.0 } else { 0.0 })
            .collect();
        let mut counts = vec![0u64; 64];
        let trials = 20_000;
        for t in 0..trials {
            let mut s = PerfectL0Sampler::new(64, L0Params::default(), 1000 + t);
            s.ingest_vector(&x);
            if let Some(sample) = s.sample() {
                counts[sample.index as usize] += 1;
            }
        }
        let total: u64 = counts.iter().sum();
        assert!(total > trials * 95 / 100, "failure rate too high: {total}");
        let tv = tv_distance(&counts, &uniform);
        assert!(tv < 0.02, "tv {tv}");
    }

    #[test]
    fn survives_cancellation() {
        let mut s = PerfectL0Sampler::new(16, L0Params::default(), 5);
        // Insert then fully delete index 3; only index 9 remains.
        s.process(Update::new(3, 100));
        s.process(Update::new(9, 4));
        s.process(Update::new(3, -100));
        let got = s.sample().expect("must sample the survivor");
        assert_eq!(got.index, 9);
        assert_eq!(got.estimate, 4.0);
    }

    #[test]
    fn zero_vector_fails() {
        let mut s = PerfectL0Sampler::new(16, L0Params::default(), 6);
        s.process(Update::new(3, 5));
        s.process(Update::new(3, -5));
        assert!(s.sample().is_none());
    }

    #[test]
    fn dense_vectors_still_sample_via_deep_levels() {
        let x = zipf_vector(512, 0.5, 100, 9);
        assert_eq!(x.f0(), 512);
        let mut ok = 0;
        for t in 0..100 {
            let mut s = PerfectL0Sampler::new(512, L0Params::default(), 700 + t);
            s.ingest_vector(&x);
            if let Some(sample) = s.sample() {
                assert_eq!(sample.estimate, x.value(sample.index) as f64);
                ok += 1;
            }
        }
        assert!(ok >= 97, "success {ok}/100");
    }

    #[test]
    fn stream_vs_vector_agree() {
        let x = zipf_vector(64, 1.0, 60, 10);
        let mut rng = pts_util::Xoshiro256pp::new(11);
        let stream = Stream::from_target(&x, StreamStyle::Turnstile { churn: 1.0 }, &mut rng);
        let mut a = PerfectL0Sampler::new(64, L0Params::default(), 12);
        a.ingest_stream(&stream);
        let mut b = PerfectL0Sampler::new(64, L0Params::default(), 12);
        b.ingest_vector(&x);
        assert_eq!(a.sample(), b.sample());
    }

    #[test]
    fn space_is_polylog_for_large_universe() {
        let s = PerfectL0Sampler::new(1 << 20, L0Params::default(), 13);
        // 22 levels × (4 rows × 24 cells × ~317 bits) ≈ 670 Kib — minuscule
        // against the 64 Mib of the raw vector.
        assert!(s.space_bits() < (1 << 20) * 64 / 50);
    }
}
