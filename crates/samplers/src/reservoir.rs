//! Reservoir sampling \[Vit85\]: the truly perfect L₁ sampler for
//! insertion-only streams, in `O(log n)` bits.
//!
//! This is the classical baseline in Table 1 — zero distortion, but it
//! cannot survive deletions (a turnstile update with `Δ < 0` is rejected).
//! The weighted variant treats an update `(i, Δ)` as `Δ` unit arrivals.

use crate::traits::{Sample, TurnstileSampler};
use pts_stream::Update;
use pts_util::wire::{Decode, Encode, WireError, WireReader, WireWriter};
use pts_util::Xoshiro256pp;

/// Single-item weighted reservoir sampler (perfect L₁ law over increments).
#[derive(Debug, Clone)]
pub struct ReservoirSampler {
    rng: Xoshiro256pp,
    total_weight: u64,
    current: Option<u64>,
}

impl ReservoirSampler {
    /// Creates an empty reservoir.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Xoshiro256pp::new(seed),
            total_weight: 0,
            current: None,
        }
    }

    /// Total inserted weight so far.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }
}

impl TurnstileSampler for ReservoirSampler {
    /// # Panics
    /// Panics on a deletion: reservoir sampling is insertion-only (this is
    /// precisely the limitation the paper's samplers remove).
    fn process(&mut self, u: Update) {
        assert!(
            u.delta >= 0,
            "reservoir sampling cannot process deletions (turnstile stream)"
        );
        if u.delta == 0 {
            return;
        }
        let w = u.delta as u64;
        self.total_weight += w;
        // Replace the held item with probability w / total: induction gives
        // the exact L1 law over all arrivals.
        if self.rng.next_below(self.total_weight) < w {
            self.current = Some(u.index);
        }
    }

    fn sample(&mut self) -> Option<Sample> {
        self.current.map(|index| Sample {
            index,
            // Reservoir keeps no frequency estimate; report the sampled
            // weight granularity instead (1 unit).
            estimate: 1.0,
        })
    }

    fn space_bits(&self) -> usize {
        // index + weight counter + RNG state.
        64 + 64 + 256
    }
}

impl Encode for ReservoirSampler {
    fn encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        self.rng.encode(w)?;
        w.put_u64(self.total_weight);
        match self.current {
            Some(i) => {
                w.put_bool(true);
                w.put_u64(i);
            }
            None => w.put_bool(false),
        }
        Ok(())
    }
}

impl Decode for ReservoirSampler {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let rng = Xoshiro256pp::decode(r)?;
        let total_weight = r.get_u64()?;
        let current = if r.get_bool()? {
            Some(r.get_u64()?)
        } else {
            None
        };
        Ok(Self {
            rng,
            total_weight,
            current,
        })
    }
}

/// k-item reservoir (uniform over arrivals, without replacement) — used by
/// the distributed-summary example.
#[derive(Debug, Clone)]
pub struct ReservoirK {
    rng: Xoshiro256pp,
    k: usize,
    seen: u64,
    items: Vec<u64>,
}

impl ReservoirK {
    /// A reservoir holding up to `k` items.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "reservoir capacity must be positive");
        Self {
            rng: Xoshiro256pp::new(seed),
            k,
            seen: 0,
            items: Vec::with_capacity(k),
        }
    }

    /// Offers one unit arrival of `index`.
    pub fn offer(&mut self, index: u64) {
        self.seen += 1;
        if self.items.len() < self.k {
            self.items.push(index);
        } else {
            let j = self.rng.next_below(self.seen);
            if (j as usize) < self.k {
                self.items[j as usize] = index;
            }
        }
    }

    /// The current reservoir contents.
    pub fn items(&self) -> &[u64] {
        &self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pts_stream::{FrequencyVector, Stream, StreamStyle};
    use pts_util::stats::tv_distance;

    #[test]
    fn samples_follow_l1_law() {
        let x = FrequencyVector::from_values(vec![1, 2, 3, 4]);
        let weights: Vec<f64> = x.values().iter().map(|&v| v as f64).collect();
        let mut counts = vec![0u64; 4];
        let trials = 40_000;
        for t in 0..trials {
            let mut rng = pts_util::Xoshiro256pp::new(t);
            let s = Stream::from_target(&x, StreamStyle::InsertionOnly, &mut rng);
            let mut r = ReservoirSampler::new(10_000 + t);
            r.ingest_stream(&s);
            counts[r.sample().unwrap().index as usize] += 1;
        }
        let tv = tv_distance(&counts, &weights);
        assert!(tv < 0.02, "tv {tv}");
    }

    #[test]
    fn empty_stream_fails() {
        let mut r = ReservoirSampler::new(1);
        assert!(r.sample().is_none());
    }

    #[test]
    fn bulk_weights_count_fully() {
        // A single update of weight 99 vs one of weight 1.
        let mut hits = 0;
        let trials = 20_000;
        for t in 0..trials {
            let mut r = ReservoirSampler::new(t);
            r.process(Update::new(0, 99));
            r.process(Update::new(1, 1));
            if r.sample().unwrap().index == 0 {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.99).abs() < 0.005, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "deletions")]
    fn rejects_deletions() {
        let mut r = ReservoirSampler::new(1);
        r.process(Update::new(0, -1));
    }

    #[test]
    fn zero_weight_updates_are_ignored() {
        let mut r = ReservoirSampler::new(1);
        r.process(Update::new(5, 0));
        assert!(r.sample().is_none());
        assert_eq!(r.total_weight(), 0);
    }

    #[test]
    fn reservoir_k_is_uniform() {
        let stream_len = 50u64;
        let k = 5;
        let mut counts = vec![0u64; stream_len as usize];
        let trials = 20_000;
        for t in 0..trials {
            let mut r = ReservoirK::new(k, t);
            for i in 0..stream_len {
                r.offer(i);
            }
            for &i in r.items() {
                counts[i as usize] += 1;
            }
        }
        let expected = trials as f64 * k as f64 / stream_len as f64;
        for (i, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.1, "item {i}: {c} vs {expected}");
        }
    }

    #[test]
    fn reservoir_k_holds_at_most_k() {
        let mut r = ReservoirK::new(3, 1);
        for i in 0..100 {
            r.offer(i);
        }
        assert_eq!(r.items().len(), 3);
    }
}
