//! # pts-samplers
//!
//! Substrate samplers consumed by the paper's algorithms and the baselines
//! they are compared against (DESIGN.md S15–S18):
//!
//! * [`PerfectL0Sampler`] — JST11 perfect L₀ sampling with exact values
//!   (Theorem 5.4); feeds every G-sampler in §5.
//! * [`PerfectLpLe2Sampler`] / [`LpLe2Batch`] — the JW18-style perfect L_p
//!   sampler for `p ∈ (0, 2]` (Theorem 1.10); the black box inside
//!   Algorithms 1–3.
//! * [`PrecisionSampler`] — the approximate `(1±ε)` baseline (\[JST11\]).
//! * [`ReservoirSampler`] — insertion-only truly perfect L₁ (\[Vit85\]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod l0;
pub mod l2_perfect;
pub mod precision;
pub mod reservoir;
pub mod traits;

pub use l0::{L0Params, PerfectL0Sampler};
pub use l2_perfect::{LpLe2Batch, LpLe2Params, PerfectLpLe2Sampler};
pub use precision::{PrecisionParams, PrecisionSampler};
pub use reservoir::{ReservoirK, ReservoirSampler};
pub use traits::{Sample, TurnstileSampler};
