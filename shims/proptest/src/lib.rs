//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro, [`Strategy`] for numeric ranges, [`collection::vec`],
//! [`ProptestConfig::with_cases`], and the `prop_assert*` family. Inputs are
//! drawn from a deterministic splitmix stream seeded by the test name, so a
//! failing case reproduces on every run. No shrinking is performed — the
//! failure report includes the case number instead.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` (`bound > 0`).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        ((((self.next_u64() >> 11) as u128) * (bound as u128)) >> 53) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over a string — used to derive a per-test seed from its name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A value generator. Unlike real proptest there is no shrinking tree; a
/// strategy just draws a value from the deterministic stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// `Just(v)` — always produces `v`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::RangeInclusive;

    /// A strategy producing `Vec`s with lengths drawn from `size` and
    /// elements drawn from `elem`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: RangeInclusive<usize>,
    }

    /// Vectors of `elem` values with a length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: RangeInclusive<usize>) -> VecStrategy<S> {
        vec_strategy_checked(elem, size)
    }

    fn vec_strategy_checked<S: Strategy>(elem: S, size: RangeInclusive<usize>) -> VecStrategy<S> {
        assert!(size.start() <= size.end(), "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let (lo, hi) = (*self.size.start(), *self.size.end());
            let len = lo + rng.next_below((hi - lo + 1) as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed assertion inside a proptest case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a proptest case, returning an error (not
/// panicking) so the harness can report the failing case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Declares property tests. Mirrors proptest's macro: an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`] — one test item at a time.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ($config:expr;) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        concat!($(stringify!($arg), " "),+)
                    );
                }
            }
        }
        $crate::__proptest_items!($config; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 0u64..100, b in -5i64..=5, x in 0.25f64..0.75) {
            prop_assert!(a < 100);
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.25..0.75).contains(&x), "x out of range: {x}");
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0i64..=9, 3..=7)) {
            prop_assert!((3..=7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (0..=9).contains(&e)));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::new(crate::seed_from_name("t"));
        let mut b = crate::TestRng::new(crate::seed_from_name("t"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
