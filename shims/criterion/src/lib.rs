//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Implements the subset of the criterion API this workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched_ref`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark runs a
//! short warm-up followed by `sample_size` timed batches and prints the mean
//! wall-clock time per iteration; there is no statistical analysis, baseline
//! tracking, or report generation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Hint for batched iteration memory footprint (ignored by the shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration means, one per sample.
    timings: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            timings: Vec::new(),
        }
    }

    /// Times `routine` over repeated calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then `samples` timed calls.
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.timings.push(start.elapsed());
        }
    }

    /// Times `routine` against a fresh `setup()` value each sample, passing
    /// it by mutable reference (setup cost excluded from timing).
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, _size: BatchSize)
    where
        S: Fn() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut warm = setup();
        std::hint::black_box(routine(&mut warm));
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            self.timings.push(start.elapsed());
        }
    }

    fn mean(&self) -> Duration {
        if self.timings.is_empty() {
            return Duration::ZERO;
        }
        self.timings.iter().sum::<Duration>() / self.timings.len() as u32
    }
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim ignores measurement time.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores warm-up time.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        println!("bench {id:<44} {:>12.3?}/iter", b.mean());
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            parent: self,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let mut b = Bencher::new(samples);
        f(&mut b);
        println!("bench {id:<44} {:>12.3?}/iter", b.mean());
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        Criterion::default()
            .sample_size(3)
            .bench_function("shim/self", |b| b.iter(|| calls += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn batched_ref_gets_fresh_input() {
        let mut seen = Vec::new();
        Criterion::default()
            .sample_size(2)
            .bench_function("shim/batched", |b| {
                b.iter_batched_ref(
                    || vec![0u8; 2],
                    |v| {
                        v.push(1);
                        seen.push(v.len());
                    },
                    BatchSize::SmallInput,
                )
            });
        // Every call sees a fresh length-2 vector.
        assert!(seen.iter().all(|&l| l == 3));
    }

    #[test]
    fn group_overrides_sample_size() {
        let mut c = Criterion::default().sample_size(50);
        let mut calls = 0u64;
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .bench_function("inner", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 3);
    }
}
