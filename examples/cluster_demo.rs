//! Three servers, one sampler: the full `pts-cluster` arc over loopback.
//!
//! Act 1 — a 3-node cluster as **one logical perfect sampler**: the
//! coordinator routes batched turnstile ingest to each update's slice
//! owner and serves draws by the distributed two-stage law (a `Stats`
//! scatter for the exact per-node `G`-masses, a node pick ∝ mass, a
//! `Sample` fetch from the picked node).
//!
//! Act 2 — **failover**: checkpoint one node over the wire, kill its
//! server, watch the cluster degrade honestly (typed errors, per-node
//! health), bring up a replacement on a fresh port, and `rejoin` it from
//! the checkpoint. A control cluster that never lost the node runs the
//! identical call sequence throughout — and the demo asserts the
//! recovered cluster's draws match the control's **draw for draw**: the
//! failure is invisible in the sampling record.
//!
//! Run with: `cargo run --release --example cluster_demo`
//!
//! Add `--metrics-addr 127.0.0.1:9185` to also expose the process-global
//! metrics registry (coordinator scatter/gather latency, node health
//! transitions, rebalance bytes, …) as a Prometheus-text scrape endpoint.

use perfect_sampling::{prelude::*, pts_obs};
use pts_server::serve;
use std::time::Duration;

/// Spawns one cluster's worth of loopback servers (seeds per slot, so the
/// subject and control clusters are twins).
fn spawn_nodes(universe: usize, count: usize) -> Vec<pts_server::Server> {
    (0..count)
        .map(|i| {
            let engine = ConcurrentEngine::new(
                EngineConfig::new(universe)
                    .shards(2)
                    .pool_size(2)
                    .seed(500 + i as u64),
                LpLe2Factory::for_universe(universe, 2.0),
            );
            serve("127.0.0.1:0", engine).expect("bind loopback node")
        })
        .collect()
}

fn cluster_over(universe: usize, servers: &[pts_server::Server]) -> Coordinator {
    let mut config = ClusterConfig::new(universe).seed(4242).client(
        ClientConfig::new()
            .connect_timeout(Duration::from_secs(2))
            .read_timeout(Duration::from_secs(5))
            .write_timeout(Duration::from_secs(5)),
    );
    for server in servers {
        config = config.node(server.local_addr().to_string());
    }
    Coordinator::connect(config).expect("connect cluster")
}

fn main() {
    let universe = 1 << 12;

    // Opt-in observability: one scrape endpoint over the registry the
    // coordinator, its client connections, and both demo clusters' node
    // servers all share (everything here is one process).
    let metrics = std::env::args()
        .skip_while(|a| a != "--metrics-addr")
        .nth(1)
        .map(|addr| {
            let endpoint = MetricsServer::bind(&addr).expect("bind metrics endpoint");
            println!(
                "metrics on http://{}/metrics (scrape it mid-run)",
                endpoint.local_addr()
            );
            endpoint
        });

    // ---- Act 1: three nodes, one sampling law --------------------------
    let mut subject_servers = spawn_nodes(universe, 3);
    let control_servers = spawn_nodes(universe, 3);
    let mut cluster = cluster_over(universe, &subject_servers);
    let mut control = cluster_over(universe, &control_servers);
    for (node, server) in subject_servers.iter().enumerate() {
        let (lo, hi) = cluster.slice_range(node);
        println!("node {node} on {} owns [{lo}, {hi})", server.local_addr());
    }

    let x = pts_stream::gen::zipf_vector(universe, 1.1, 900, 11);
    let updates: Vec<Update> = x.iter_nonzero().map(|(i, v)| Update::new(i, v)).collect();
    for chunk in updates.chunks(256) {
        cluster.ingest_batch(chunk).expect("ingest");
        control.ingest_batch(chunk).expect("ingest control");
    }

    let stats = cluster.stats();
    println!(
        "ingested {} updates across {} nodes; cluster mass {:.1}, support {}",
        stats.total_updates,
        stats.nodes.len(),
        stats.total_mass,
        stats.total_support
    );

    print!("6 draws from the cluster-wide L2 law:");
    for draw in cluster.sample_many(6).expect("scatter-gather draws") {
        match draw {
            Some(s) => print!("  {}:{}", s.index, s.estimate),
            None => print!("  ⊥"),
        }
    }
    println!();
    let _ = control.sample_many(6).expect("control keeps lockstep");

    // ---- Act 2: kill a node, degrade honestly, rejoin identically ------
    let checkpoint = cluster.checkpoint_node(1).expect("checkpoint node 1");
    println!(
        "pulled node 1's {}-byte checkpoint; killing its server",
        checkpoint.len()
    );
    subject_servers.remove(1).join();

    match cluster.sample() {
        Err(err) => println!("degraded as designed: {err}"),
        Ok(_) => unreachable!("a draw cannot be served without node 1's mass"),
    }
    let degraded = cluster.stats();
    assert!(degraded.degraded());
    for (node, status) in degraded.nodes.iter().enumerate() {
        println!(
            "  node {node} {:?} (slice {:?})",
            status.health, status.slice
        );
    }

    let replacement = serve(
        "127.0.0.1:0",
        ConcurrentEngine::new(
            EngineConfig::new(universe).shards(2).pool_size(2).seed(999),
            LpLe2Factory::for_universe(universe, 2.0),
        ),
    )
    .expect("bind replacement");
    cluster
        .rejoin(1, replacement.local_addr().to_string(), &checkpoint)
        .expect("rejoin from checkpoint");
    println!(
        "node 1 rejoined on {} from its checkpoint",
        replacement.local_addr()
    );
    assert!(!cluster.stats().degraded());

    // The proof: the recovered cluster and the never-interrupted control
    // serve identical draws from here on.
    let recovered = cluster.sample_many(8).expect("post-rejoin draws");
    let expected = control.sample_many(8).expect("control draws");
    assert_eq!(
        recovered, expected,
        "recovered cluster must match the uninterrupted control"
    );
    print!("8 post-failover draws, identical to the control cluster's:");
    for draw in &recovered {
        match draw {
            Some(s) => print!("  {}:{}", s.index, s.estimate),
            None => print!("  ⊥"),
        }
    }
    println!();

    drop(cluster);
    drop(control);
    replacement.join();
    for server in subject_servers.into_iter().chain(control_servers) {
        server.join();
    }
    println!("failover-recovered cluster verified: draw-for-draw identical ✔");

    if let Some(endpoint) = metrics {
        println!("\nwhat the failover looked like to a scraper:");
        for line in pts_obs::render_prometheus()
            .lines()
            .filter(|l| l.starts_with("pts_cluster_node") || l.starts_with("pts_cluster_scatter"))
        {
            println!("  {line}");
        }
        println!("and to the event ring:");
        for event in pts_obs::drain_events()
            .iter()
            .filter(|e| e.kind.starts_with("cluster."))
        {
            println!("  [{}] {}: {}", event.seq, event.kind, event.detail);
        }
        endpoint.join();
    }
}
