//! Perfect polynomial sampling — the class of functions no scale-invariant
//! sampler can serve (Theorem 1.5).
//!
//! A content platform scores items by `G(z) = z² + 0.1·|z|³`: quadratic
//! engagement with a cubic "viral" bonus. Doubling all counts does *not*
//! just rescale the sampling law — the cubic term gains relative mass, so
//! viral items must be sampled relatively more often. This example shows
//! (a) the sampler matching the exact G-law, and (b) the law itself
//! shifting under a global ×4 traffic surge, with the sampler tracking it.
//!
//! Run with: `cargo run --release --example polynomial_scoring`

use perfect_sampling::prelude::*;

fn law(g: &Polynomial, x: &FrequencyVector) -> Vec<f64> {
    let total: f64 = x.values().iter().map(|&v| g.eval(v as f64)).sum();
    x.values()
        .iter()
        .map(|&v| g.eval(v as f64) / total)
        .collect()
}

fn empirical(x: &FrequencyVector, g: &Polynomial, trials: u64, seed: u64) -> (Vec<f64>, u64) {
    let n = x.n();
    let params = PolynomialParams::for_universe(n, g.clone());
    let mut counts = vec![0u64; n];
    let mut fails = 0;
    for t in 0..trials {
        let mut s = PolynomialSampler::new(n, params.clone(), seed + t);
        s.ingest_vector(x);
        match s.sample() {
            Some(sample) => counts[sample.index as usize] += 1,
            None => fails += 1,
        }
    }
    let total: u64 = counts.iter().sum::<u64>().max(1);
    (
        counts.iter().map(|&c| c as f64 / total as f64).collect(),
        fails,
    )
}

fn main() {
    let g = Polynomial::new(vec![(1.0, 2.0), (0.1, 3.0)]);
    println!(
        "score function G(z) = z² + 0.1|z|³ (top degree p = {})\n",
        g.degree()
    );

    let base = FrequencyVector::from_values(vec![3, 12, 5, 0, 8, 2]);
    let surged = FrequencyVector::from_values(base.values().iter().map(|v| v * 4).collect());

    let trials = 1_500;
    let (emp_base, fails_base) = empirical(&base, &g, trials, 10_000);
    let (emp_surge, fails_surge) = empirical(&surged, &g, trials, 50_000);
    let ideal_base = law(&g, &base);
    let ideal_surge = law(&g, &surged);

    println!(
        "{:>5} {:>6} | {:>9} {:>9} | {:>9} {:>9}",
        "item", "count", "ideal", "sampled", "ideal×4", "sampled×4"
    );
    for i in 0..base.n() {
        if base.value(i as u64) == 0 {
            continue;
        }
        println!(
            "{:>5} {:>6} | {:>9.4} {:>9.4} | {:>9.4} {:>9.4}",
            i,
            base.value(i as u64),
            ideal_base[i],
            emp_base[i],
            ideal_surge[i],
            emp_surge[i],
        );
    }
    println!("(⊥ rates: base {fails_base}/{trials}, surge {fails_surge}/{trials})");

    // Quantify the shift: an Lp sampler would output identical laws.
    let shift: f64 = ideal_base
        .iter()
        .zip(&ideal_surge)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / 2.0;
    println!(
        "\nlaw shift between x and 4x: TV = {shift:.4} — \
         a scale-invariant (L_p) sampler would show 0 here."
    );

    // And the viral item's share specifically:
    let viral = 1usize; // value 12 → 48 after surge
    println!(
        "viral item {viral}: share {:.3} → {:.3} after the surge",
        ideal_base[viral], ideal_surge[viral]
    );
}
