//! Quickstart: perfect L_p sampling (p > 2) from a turnstile stream.
//!
//! Builds a skewed frequency vector through inserts *and deletes*, draws
//! perfect L₃ samples, and compares the empirical sampling histogram with
//! the ideal law `|x_i|³ / ‖x‖₃³`.
//!
//! Run with: `cargo run --release --example quickstart`

use perfect_sampling::prelude::*;

fn main() {
    let n = 16;
    let p = 3.0;
    let seed = 2025;

    // The stream: every coordinate is overshot and partially deleted, so the
    // final vector differs from the gross traffic — turnstile semantics.
    let target = FrequencyVector::from_values(vec![
        40, -3, 7, 0, 12, -25, 5, 1, 0, 9, -2, 18, 0, 4, -6, 30,
    ]);
    let mut rng = pts_util::Xoshiro256pp::new(seed);
    let stream = Stream::from_target(&target, StreamStyle::Turnstile { churn: 1.0 }, &mut rng);
    println!(
        "stream: {} updates over universe {n} (gross mass {}, net F3 = {:.0})",
        stream.len(),
        stream.gross_mass(),
        target.fp_moment(p)
    );

    // Draw many independent perfect L3 samples; each sample needs a fresh
    // sampler instance (independence is what "perfect" buys you).
    let trials = 2_000;
    let params = PerfectLpParams::for_universe(n, p);
    let mut counts = vec![0u64; n];
    let mut fails = 0;
    for t in 0..trials {
        let mut sampler = PerfectLpSampler::new(n, params, seed + 1 + t);
        sampler.ingest_stream(&stream);
        match sampler.sample() {
            Some(s) => counts[s.index as usize] += 1,
            None => fails += 1,
        }
    }
    let accepted: u64 = counts.iter().sum();
    println!("accepted {accepted}/{trials} samples ({fails} ⊥)\n");

    println!(
        "{:>5} {:>8} {:>10} {:>10}",
        "i", "x_i", "ideal", "empirical"
    );
    let f3 = target.fp_moment(p);
    for (i, &count) in counts.iter().enumerate() {
        let ideal = (target.value(i as u64).abs() as f64).powf(p) / f3;
        let emp = count as f64 / accepted as f64;
        if ideal > 0.0 {
            println!(
                "{:>5} {:>8} {:>10.4} {:>10.4}",
                i,
                target.value(i as u64),
                ideal,
                emp
            );
        }
    }

    let weights = target.lp_weights(p);
    let tv = pts_util::stats::tv_distance(&counts, &weights);
    println!("\ntotal-variation distance to the ideal L3 law: {tv:.4}");
}
