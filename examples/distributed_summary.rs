//! Distributed summaries on the engine: shard a turnstile stream across
//! "datacenters", run a `ShardedEngine` in each, ship each site's state to
//! a coordinator **as real wire bytes**, and query the merged engine as if
//! it had seen the whole stream — the §1.3 distributed-databases
//! motivation, now with repeated draws, query-at-any-time semantics, and a
//! payload that could actually cross a network: framed, versioned,
//! checksummed, decoded on the receiving side with full validation.
//!
//! Three levels are on display:
//! * **wire level** — `EngineSnapshot::to_bytes()` → ship `Vec<u8>` →
//!   `EngineSnapshot::from_bytes()`; the gap+varint coded payload is what
//!   Theorem 1.2's space story looks like on a socket;
//! * **engine level** — `merge()` is router-agnostic (the coordinator here
//!   runs a different shard count than the ingest tier);
//! * **sketch level** — the same-seeded `PerfectLpSampler::merge` path the
//!   paper's linearity gives for free, kept as the exactness cross-check.
//!
//! Run with: `cargo run --release --example distributed_summary`

use perfect_sampling::prelude::*;

fn main() {
    let n = 64;
    let datacenters = 4;
    let seed = 321;

    // Global workload, sprayed round-robin across ingest sites.
    let global = pts_stream::gen::zipf_vector(n, 1.0, 120, seed);
    let mut rng = pts_util::Xoshiro256pp::new(seed + 1);
    let stream = Stream::from_target(&global, StreamStyle::Turnstile { churn: 0.6 }, &mut rng);
    let site_streams = stream.split_round_robin(datacenters);
    println!(
        "global stream: {} updates over {n} keys, sprayed across {datacenters} sites (~{} each)",
        stream.len(),
        stream.len() / datacenters
    );

    // Each site runs its own engine (2 shards × 2 samplers, perfect L3 law),
    // ingesting in batches — in parallel, as real sites would.
    let factory = PerfectLpFactory::for_universe(n, 3.0);
    let site_engines: Vec<ShardedEngine<PerfectLpFactory>> = std::thread::scope(|scope| {
        let handles: Vec<_> = site_streams
            .iter()
            .enumerate()
            .map(|(site, updates)| {
                scope.spawn(move || {
                    let config = EngineConfig::new(n)
                        .shards(2)
                        .pool_size(2)
                        .seed(seed + site as u64);
                    let mut engine = ShardedEngine::new(config, factory);
                    for batch in updates.chunks(256) {
                        engine.ingest_batch(batch);
                    }
                    engine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("site"))
            .collect()
    });

    // Ship each site's snapshot as REAL bytes: frame it, move the buffer
    // (that is the network hop), decode and validate it on the coordinator.
    // Note the different shard count — snapshots are router-agnostic.
    let site_snapshots: Vec<EngineSnapshot> = site_engines.iter().map(|e| e.snapshot()).collect();
    let wire_payloads: Vec<Vec<u8>> = site_snapshots
        .iter()
        .map(EngineSnapshot::to_bytes)
        .collect();
    let wire_bytes: usize = wire_payloads.iter().map(Vec::len).sum();
    let accounting_bits: usize = site_snapshots.iter().map(EngineSnapshot::space_bits).sum();
    let mut coordinator = ShardedEngine::new(
        EngineConfig::new(n).shards(8).pool_size(3).seed(seed + 99),
        factory,
    );
    for payload in &wire_payloads {
        let snap = EngineSnapshot::from_bytes(payload).expect("valid site payload");
        coordinator.merge(&snap);
    }
    println!(
        "sites shipped {wire_bytes} wire bytes total (vs {} at the 128-bit/entry accounting); \
         coordinator state is exact: {}",
        pts_util::table::fmt_bits(accounting_bits),
        coordinator.snapshot().to_vector() == global,
    );

    // A corrupted payload cannot poison the coordinator: flip one byte and
    // the frame checksum rejects it at decode time.
    let mut tampered = wire_payloads[0].clone();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x01;
    println!(
        "tampered payload rejected: {}",
        EngineSnapshot::from_bytes(&tampered).is_err()
    );

    // The merged engine serves repeated perfect L3 draws at any time.
    println!("\ncoordinator perfect-L3 draws (repeatable, mid-service):");
    for q in 0..6 {
        match coordinator.sample() {
            Some(s) => println!(
                "  draw {q}: index {:>2} (estimate {:>8.1}, true {:>5})",
                s.index,
                s.estimate,
                global.value(s.index)
            ),
            None => println!("  draw {q}: ⊥ (bounded probability, retry is free)"),
        }
    }
    let stats = coordinator.stats();
    println!(
        "coordinator stats: {} samples, {} ⊥, {} lazy respawns",
        stats.samples,
        stats.fails,
        coordinator.respawns()
    );

    // Sketch-level cross-check: same-seeded one-shot samplers merged across
    // shards agree decision-for-decision with one sampler that saw all of
    // it (linearity, Lemma-free and exact).
    let params = PerfectLpParams::for_universe(n, 3.0);
    let sampler_seed = seed + 2;
    // A fresh same-seeded sampler has all-zero linear state, so merging
    // every shard into it is exactly ingesting the whole stream.
    let mut merged = PerfectLpSampler::new(n, params, sampler_seed);
    for updates in &site_streams {
        let mut shard = PerfectLpSampler::new(n, params, sampler_seed);
        for u in updates {
            shard.process(*u);
        }
        merged.merge(&shard);
    }
    let mut single = PerfectLpSampler::new(n, params, sampler_seed);
    single.ingest_stream(&stream);
    let agree = match (single.sample(), merged.sample()) {
        (None, None) => true,
        (Some(a), Some(b)) => a.index == b.index,
        _ => false,
    };
    println!("sketch-level merge == unsharded decision: {agree}");
}
