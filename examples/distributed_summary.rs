//! Distributed summaries: shard a turnstile stream across "machines",
//! sketch locally, merge centrally — the §1.3 distributed-databases
//! motivation for *perfect* samplers.
//!
//! Every structure in this library is a linear sketch, so merging same-seed
//! shards is exactly equivalent to one machine seeing the whole stream; the
//! coordinator then draws perfect L₃ samples and answers moment queries as
//! if it had the global data, while each shard shipped only kilobits.
//!
//! Run with: `cargo run --release --example distributed_summary`

use perfect_sampling::prelude::*;

fn main() {
    let n = 64;
    let shards = 4;
    let seed = 321;

    // Global workload, split round-robin into per-shard streams.
    let global = pts_stream::gen::zipf_vector(n, 1.0, 120, seed);
    let mut rng = pts_util::Xoshiro256pp::new(seed + 1);
    let stream = Stream::from_target(&global, StreamStyle::Turnstile { churn: 0.6 }, &mut rng);
    let shard_updates: Vec<Vec<Update>> = (0..shards)
        .map(|s| {
            stream
                .updates()
                .iter()
                .copied()
                .skip(s)
                .step_by(shards)
                .collect()
        })
        .collect();
    println!(
        "global stream: {} updates over {n} keys, sharded {shards} ways (~{} each)",
        stream.len(),
        stream.len() / shards
    );

    // Each shard builds the SAME-SEEDED sampler over its slice, in parallel.
    let params = PerfectLpParams::for_universe(n, 3.0);
    let sampler_seed = seed + 2;
    let mut shard_samplers: Vec<PerfectLpSampler> = std::thread::scope(|scope| {
        let handles: Vec<_> = shard_updates
            .iter()
            .map(|updates| {
                scope.spawn(move || {
                    let mut s = PerfectLpSampler::new(n, params, sampler_seed);
                    for u in updates {
                        s.process(*u);
                    }
                    s
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard")).collect()
    });
    let shard_bits = shard_samplers[0].space_bits();

    // Coordinator: merge the shard sketches.
    let mut coordinator = shard_samplers.remove(0);
    for shard in &shard_samplers {
        coordinator.merge(shard);
    }
    println!(
        "each shard shipped {} of sketch (raw vector: {}; at toy n the \
         polylog constants dominate — the n^(1-2/p) payoff is E2's job)",
        pts_util::table::fmt_bits(shard_bits),
        pts_util::table::fmt_bits(n * 64),
    );

    // The merged sketch answers exactly like a single global sampler.
    match coordinator.sample() {
        Some(s) => {
            let truth = global.value(s.index);
            println!(
                "\nmerged perfect L3 sample: index {} (estimate {:.1}, true {})",
                s.index, s.estimate, truth
            );
        }
        None => println!("\nmerged sampler returned ⊥ this time (bounded probability)"),
    }

    // Sanity: a single sampler over the unsharded stream agrees decision-
    // for-decision with the merged one (linearity).
    let mut single = PerfectLpSampler::new(n, params, sampler_seed);
    single.ingest_stream(&stream);
    let agree = match (single.sample(), coordinator.sample()) {
        (None, None) => true,
        (Some(a), Some(b)) => a.index == b.index,
        _ => false,
    };
    println!("merged == unsharded decision: {agree}");
}
