//! The engine as a network service: a real TCP session over loopback.
//!
//! Everything previous examples did in-process now crosses a socket:
//! a `pts-server` hosts a `ConcurrentEngine`, and a blocking `Client`
//! drives it through the framed request/response protocol (PROTOCOL.md) —
//! batched turnstile ingest, mid-stream sampling, live stats, and a full
//! engine checkpoint pulled *over the wire*.
//!
//! The second act is the crash-recovery story at service granularity:
//! the demo **kills the server process-equivalent** (shuts it down and
//! drops it), brings up a fresh server on a new port hosting a blank
//! stand-in engine, and restores the checkpoint into it with one request.
//! The restored service then serves **exactly** the draws the killed one
//! would have — asserted draw for draw, the S29 bit-identity contract
//! measured through two sockets and a restart.
//!
//! Run with: `cargo run --release --example serve_demo`
//!
//! Add `--metrics-addr 127.0.0.1:9184` to also expose the process-global
//! metrics registry as a Prometheus-text scrape endpoint for the session
//! (`curl http://127.0.0.1:9184/metrics` while it runs).

use perfect_sampling::{prelude::*, pts_obs};
use pts_server::{serve, Client};

fn main() {
    // Opt-in observability: a side scrape endpoint over the same registry
    // every instrumented layer below writes into.
    let metrics = std::env::args()
        .skip_while(|a| a != "--metrics-addr")
        .nth(1)
        .map(|addr| {
            let endpoint = MetricsServer::bind(&addr).expect("bind metrics endpoint");
            println!(
                "metrics on http://{}/metrics (scrape it mid-run)",
                endpoint.local_addr()
            );
            endpoint
        });

    // ---- Act 1: a live sampling service -------------------------------
    let universe = 1 << 12;
    let config = EngineConfig::new(universe).shards(4).pool_size(2).seed(42);
    let factory = LpLe2Factory::for_universe(universe, 2.0);
    let engine = ConcurrentEngine::new(config, factory);

    // Port 0 = ephemeral: the OS picks a free loopback port.
    let server = serve("127.0.0.1:0", engine).expect("bind loopback");
    let addr = server.local_addr();
    println!("server A listening on {addr}");

    let mut client = Client::connect(addr).expect("connect");

    // A zipfian turnstile workload, ingested in batches like a real feed.
    let x = pts_stream::gen::zipf_vector(universe, 1.1, 800, 7);
    let updates: Vec<Update> = x.iter_nonzero().map(|(i, v)| Update::new(i, v)).collect();
    for chunk in updates.chunks(256) {
        client.ingest_batch(chunk).expect("ingest");
    }

    let stats = client.stats().expect("stats");
    println!(
        "ingested {} updates over {} batches; mass {:.1}, support {}",
        stats.updates, stats.batches, stats.mass, stats.support
    );

    // Sample mid-stream, over the wire.
    print!("6 draws from the L2 law:");
    for draw in client.sample_many(6).expect("sample") {
        match draw {
            Some(s) => print!("  {}:{}", s.index, s.estimate),
            None => print!("  ⊥"),
        }
    }
    println!();

    // ---- Act 2: checkpoint over the wire, kill, restore ---------------
    let checkpoint = client.checkpoint().expect("checkpoint");
    println!("pulled a {}-byte engine checkpoint", checkpoint.len());

    // What would the service serve next? Record it, then kill the server.
    let expected: Vec<Option<Sample>> = client.sample_many(8).expect("post-checkpoint draws");
    client.shutdown_server().expect("shutdown");
    server.join();
    println!("server A is gone (accept loop exited, handlers joined)");

    // A fresh server, fresh port, hosting a blank engine of the same
    // type — one Restore request replaces its state wholesale.
    let stand_in = ConcurrentEngine::new(config.seed(999), factory);
    let server_b = serve("127.0.0.1:0", stand_in).expect("bind replacement");
    let mut client_b = Client::connect(server_b.local_addr()).expect("reconnect");
    client_b.restore(&checkpoint).expect("restore");
    println!(
        "server B restored the checkpoint on {}",
        server_b.local_addr()
    );

    let replayed = client_b.sample_many(8).expect("replayed draws");
    assert_eq!(
        replayed, expected,
        "restored service must serve identical draws"
    );
    print!("8 post-restart draws, identical to the killed server's:");
    for draw in &replayed {
        match draw {
            Some(s) => print!("  {}:{}", s.index, s.estimate),
            None => print!("  ⊥"),
        }
    }
    println!();

    client_b.shutdown_server().expect("shutdown B");
    server_b.join();
    println!("crash-recovered service verified: draw-for-draw identical ✔");

    if let Some(endpoint) = metrics {
        println!("\nwhat the session looked like to a scraper:");
        for line in pts_obs::render_prometheus()
            .lines()
            .filter(|l| l.starts_with("pts_server_requests") || l.starts_with("pts_engine_ingest"))
        {
            println!("  {line}");
        }
        endpoint.join();
    }
}
