//! Network anomaly detection on the engine: heavy-tailed (p > 2) sampling
//! as an *always-on* service.
//!
//! The scenario from the paper's introduction: a router sees per-source
//! packet counts as a turnstile stream (NAT rebindings and retractions make
//! it a *general* turnstile, not insertion-only). A DDoS source floods the
//! link; because `p > 2` emphasizes dominant coordinates, a handful of
//! perfect L₄ draws finds the attackers with near-certainty.
//!
//! Where the seed version built 16 throwaway one-shot samplers, the engine
//! ingests the traffic **once** and serves all 16 draws from its shard
//! pools — and it answers *mid-stream*, before the attack has even
//! finished, because a query only consumes a pool instance that lazily
//! respawns from compact per-shard state.
//!
//! Run with: `cargo run --release --example network_monitor`
//!
//! Pass `--concurrent` to serve the same traffic through the threaded
//! front-end (`ConcurrentEngine`): one worker thread per shard, pipelined
//! ingest, and a parallel pool catch-up (`prime`) between the mid-stream
//! probe and the query burst. The report is identical by the engines'
//! determinism contract — only the wall-clock changes.
//!
//! Pass `--tenants N` for the wire-v4 multi-tenant variant: N routers'
//! monitors — each with its own attackers and its own traffic — served by
//! ONE `pts-server` process through one connection, each in its own
//! namespace. Ingest and draws are interleaved across tenants, and every
//! tenant's report is checked draw-for-draw against an isolated
//! in-process control monitor: the reports are independent — one
//! router's flood never bleeds into another's sampling law.
//!
//! New in this version: the monitor **crashes** halfway through the attack.
//! Right after the mid-stream probe it checkpoints its complete state to a
//! byte buffer (in production: disk/S3), the engine value is dropped, and a
//! fresh process-equivalent restores from the bytes and keeps serving. A
//! control engine that never crashed runs the identical call sequence, and
//! the example asserts the two reports agree **draw for draw** — crash
//! recovery is invisible, which is the wire format's whole contract.

use perfect_sampling::prelude::*;
use std::collections::HashMap;

/// The two serving modes, behind one trait object-free facade: both
/// engines expose the same methods, so the example abstracts them with an
/// enum rather than generics.
enum Monitor {
    Sequential(ShardedEngine<PerfectLpFactory>),
    Concurrent(ConcurrentEngine<PerfectLpFactory>),
}

impl Monitor {
    fn ingest_batch(&mut self, batch: &[Update]) {
        match self {
            Monitor::Sequential(e) => e.ingest_batch(batch),
            Monitor::Concurrent(e) => e.ingest_batch(batch),
        }
    }

    fn sample(&mut self) -> Option<Sample> {
        match self {
            Monitor::Sequential(e) => e.sample(),
            Monitor::Concurrent(e) => e.sample(),
        }
    }

    /// Eager pool catch-up before a query burst (parallel across shards in
    /// concurrent mode).
    fn prime(&mut self) -> usize {
        match self {
            Monitor::Sequential(e) => e.prime(),
            Monitor::Concurrent(e) => e.prime(),
        }
    }

    fn respawns(&self) -> u64 {
        match self {
            Monitor::Sequential(e) => e.respawns(),
            Monitor::Concurrent(e) => e.respawns(),
        }
    }

    /// Serializes the complete engine state (the durable-snapshot wire
    /// format; the concurrent front-end flushes to quiescence first).
    fn checkpoint(&mut self) -> Vec<u8> {
        let mut bytes = Vec::new();
        match self {
            Monitor::Sequential(e) => e.checkpoint(&mut bytes).expect("checkpoint"),
            Monitor::Concurrent(e) => e.checkpoint(&mut bytes).expect("checkpoint"),
        }
        bytes
    }

    /// Rebuilds a monitor from checkpoint bytes — the payload is
    /// front-end-agnostic, so recovery picks its mode independently of the
    /// mode that wrote it.
    fn restore(concurrent: bool, bytes: &[u8]) -> Monitor {
        if concurrent {
            Monitor::Concurrent(ConcurrentEngine::restore(&mut &bytes[..]).expect("restore"))
        } else {
            Monitor::Sequential(ShardedEngine::restore(&mut &bytes[..]).expect("restore"))
        }
    }
}

/// One tenant's scenario: its own attacker pair and turnstile stream over
/// the shared 96-source universe.
struct Tenant {
    ns: u64,
    attackers: [u64; 2],
    stream: Stream,
}

/// Builds tenant `ns`'s monitor engine — a pure function of the
/// namespace, used by the server's spawner AND for the isolated control
/// monitors, which is what makes the draw-for-draw independence check
/// meaningful.
fn tenant_engine(ns: u64) -> ShardedEngine<PerfectLpFactory> {
    let n = 96;
    ShardedEngine::new(
        EngineConfig::new(n).shards(2).pool_size(2).seed(900 + ns),
        PerfectLpFactory::for_universe(n, 4.0),
    )
}

/// The `--tenants N` mode: N routers monitored by one server process.
fn run_tenants(count: u64) {
    let n = 96u64;
    println!("mode: multi-tenant — {count} routers through one server (wire v4)\n");

    // Each tenant gets its own attackers and its own turnstile stream.
    let tenants: Vec<Tenant> = (1..=count)
        .map(|ns| {
            let a0 = (7 + 17 * ns) % n;
            let mut a1 = (41 + 29 * ns) % n;
            if a1 == a0 {
                a1 = (a1 + 1) % n;
            }
            let mut flows = pts_stream::gen::uniform_vector(n as usize, 40, 100 + ns);
            let mut values = flows.values().to_vec();
            values[a0 as usize] = 2_500;
            values[a1 as usize] = 1_800;
            flows = FrequencyVector::from_values(values);
            let mut rng = pts_util::Xoshiro256pp::new(1000 + ns);
            let stream =
                Stream::from_target(&flows, StreamStyle::Turnstile { churn: 0.5 }, &mut rng);
            Tenant {
                ns,
                attackers: [a0, a1],
                stream,
            }
        })
        .collect();

    // One server hosts every router's monitor; tenants spawn lazily.
    let server = serve_with_spawner("127.0.0.1:0", tenant_engine(0), tenant_engine)
        .expect("bind multi-tenant server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let mut controls: Vec<ShardedEngine<PerfectLpFactory>> = Vec::new();
    for t in &tenants {
        client.create_namespace(t.ns).expect("create tenant");
        controls.push(tenant_engine(t.ns));
    }

    // Interleaved ingest: round-robin one batch per tenant per turn, so
    // every tenant's traffic lands with every other tenant's in between.
    let mut chunk_iters: Vec<_> = tenants
        .iter()
        .map(|t| t.stream.updates().chunks(128))
        .collect();
    loop {
        let mut any = false;
        for (k, t) in tenants.iter().enumerate() {
            if let Some(batch) = chunk_iters[k].next() {
                any = true;
                client.ingest_batch_ns(t.ns, batch).expect("ingest");
                controls[k].ingest_batch(batch);
            }
        }
        if !any {
            break;
        }
    }
    let total: usize = tenants.iter().map(|t| t.stream.len()).sum();
    println!("ingested {total} updates across {count} namespaces, interleaved\n");

    // Interleaved draws: 16 per tenant, each checked draw-for-draw
    // against that tenant's isolated control monitor.
    let draws = 16;
    let mut hits: Vec<HashMap<u64, u32>> = vec![HashMap::new(); tenants.len()];
    let mut fails = vec![0u32; tenants.len()];
    for _ in 0..draws {
        for (k, t) in tenants.iter().enumerate() {
            let shared = client.sample_ns(t.ns).expect("sample");
            let isolated = controls[k].sample();
            assert_eq!(
                shared, isolated,
                "tenant {} diverged from its isolated control — tenancy leaked",
                t.ns
            );
            match shared {
                Some(s) => *hits[k].entry(s.index).or_default() += 1,
                None => fails[k] += 1,
            }
        }
    }

    // Per-tenant reports: each router catches its OWN attackers.
    let mut caught_total = 0;
    for (k, t) in tenants.iter().enumerate() {
        let caught = t
            .attackers
            .iter()
            .filter(|a| hits[k].get(a).copied().unwrap_or(0) >= 2)
            .count();
        caught_total += caught;
        let top = hits[k]
            .iter()
            .max_by_key(|&(_, c)| *c)
            .map(|(s, c)| format!("top source {s} with {c} hits"))
            .unwrap_or_else(|| "no successful draws".into());
        println!(
            "tenant {}: attackers {:?} — detected {caught}/2 (draws {}/{draws} ok, {}), \
             0 draws diverged from isolated control",
            t.ns,
            t.attackers,
            draws - fails[k],
            top
        );
    }
    println!(
        "\n{caught_total}/{} attackers detected across tenants; every report matched its \
         isolated control draw for draw — per-tenant independence holds",
        2 * tenants.len()
    );

    client.shutdown_server().expect("shutdown");
    server.join();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--tenants") {
        let count: u64 = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or(3)
            .max(2);
        run_tenants(count);
        return;
    }

    let concurrent = std::env::args().any(|a| a == "--concurrent");
    let n = 96; // source universe (hashed /24s, say)
    let seed = 7u64;

    // Background traffic: moderate flows everywhere; two attackers.
    let mut flows = pts_stream::gen::uniform_vector(n, 40, seed);
    let attackers = [37u64, 81u64];
    let mut values = flows.values().to_vec();
    values[attackers[0] as usize] = 2_500;
    values[attackers[1] as usize] = 1_800;
    flows = FrequencyVector::from_values(values);

    let mut rng = pts_util::Xoshiro256pp::new(seed + 1);
    let stream = Stream::from_target(&flows, StreamStyle::Turnstile { churn: 0.5 }, &mut rng);
    println!(
        "traffic stream: {} updates, {} sources, attackers at {:?}",
        stream.len(),
        n,
        attackers
    );

    // Who dominates F4? (Ground truth, for reference.)
    let f4 = flows.fp_moment(4.0);
    let attacker_share: f64 = attackers
        .iter()
        .map(|&a| (flows.value(a).abs() as f64).powf(4.0) / f4)
        .sum();
    println!("attackers hold {:.2}% of F4", attacker_share * 100.0);

    // One engine, perfect L4 law, 2 shards × 2 pooled samplers — threaded
    // or not, same seeds, same draws. The `control` twin runs the identical
    // call sequence without ever crashing, to prove recovery is invisible.
    let config = EngineConfig::new(n).shards(2).pool_size(2).seed(seed);
    let factory = PerfectLpFactory::for_universe(n, 4.0);
    let build = |concurrent: bool| {
        if concurrent {
            Monitor::Concurrent(ConcurrentEngine::new(config, factory))
        } else {
            Monitor::Sequential(ShardedEngine::new(config, factory))
        }
    };
    if concurrent {
        println!("mode: concurrent (one worker thread per shard)\n");
    } else {
        println!("mode: sequential (pass --concurrent for the threaded front-end)\n");
    }
    let mut engine = build(concurrent);
    let mut control = build(concurrent);

    // Ingest the first half of the traffic, then probe MID-STREAM: the
    // engine answers while the attack is still in flight.
    let updates = stream.updates();
    let (first_half, second_half) = updates.split_at(updates.len() / 2);
    for batch in first_half.chunks(128) {
        engine.ingest_batch(batch);
        control.ingest_batch(batch);
    }
    let early = engine.sample();
    let _ = control.sample();
    println!(
        "mid-stream probe after {} updates: {}",
        first_half.len(),
        match early {
            Some(s) => format!("index {} (estimate {:.0})", s.index, s.estimate),
            None => "⊥".to_string(),
        }
    );

    // CRASH. The monitor checkpoints its full state — net vectors, masses,
    // live sampler sketches, RNG positions — and the process "dies"; a
    // replacement restores from the bytes and keeps serving as if nothing
    // happened.
    let snapshot_bytes = engine.checkpoint();
    drop(engine);
    let mut engine = Monitor::restore(concurrent, &snapshot_bytes);
    println!(
        "crash + recovery: {} checkpoint bytes restored mid-attack",
        snapshot_bytes.len()
    );

    // Finish the stream, then catch the pools up *before* the query burst
    // (in concurrent mode every shard replays its net vector in parallel).
    for batch in second_half.chunks(128) {
        engine.ingest_batch(batch);
        control.ingest_batch(batch);
    }
    let refilled = engine.prime();
    let _ = control.prime();
    println!("pool catch-up before the burst: {refilled} slot(s) refilled");

    // Draw 16 L4 samples from the recovered engine — each checked against
    // the never-crashed control, draw for draw.
    let draws = 16;
    let mut hits: HashMap<u64, u32> = HashMap::new();
    let mut fails = 0;
    let mut divergences = 0;
    for _ in 0..draws {
        let recovered = engine.sample();
        let uninterrupted = control.sample();
        if recovered != uninterrupted {
            divergences += 1;
        }
        match recovered {
            Some(s) => *hits.entry(s.index).or_default() += 1,
            None => fails += 1,
        }
    }
    assert_eq!(
        divergences, 0,
        "recovered engine diverged from the uninterrupted control"
    );
    println!("recovered vs uninterrupted control: 0/{draws} draws diverged");
    let mut report: Vec<(u64, u32)> = hits.into_iter().collect();
    report.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("\nperfect L4 sampling report ({draws} draws, {fails} ⊥):");
    for (src, count) in &report {
        let flag = if attackers.contains(src) {
            "  << attacker"
        } else {
            ""
        };
        println!("  source {src:>4}: {count:>2} hits{flag}");
    }
    let caught = report
        .iter()
        .filter(|(s, c)| attackers.contains(s) && *c >= 2)
        .count();
    println!(
        "\ndetected {caught}/{} attackers with >=2 hits ({} respawns served the draws)",
        attackers.len(),
        engine.respawns()
    );

    // The reservoir baseline cannot even ingest this stream.
    let mut reservoir = ReservoirSampler::new(seed);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        reservoir.ingest_stream(&stream);
    }));
    match outcome {
        Err(_) => println!(
            "reservoir baseline: panicked on the first deletion — \
             insertion-only samplers cannot monitor turnstile traffic"
        ),
        Ok(()) => println!("reservoir baseline unexpectedly survived (no deletions?)"),
    }
}
