//! Network anomaly detection with heavy-tailed (p > 2) sampling.
//!
//! The scenario from the paper's introduction: a router sees per-source
//! packet counts as a turnstile stream (NAT rebindings and retractions make
//! it a *general* turnstile, not insertion-only). A DDoS source floods the
//! link; because `p > 2` emphasizes dominant coordinates, a handful of
//! perfect L₄ samples finds the attackers with near-certainty, while the
//! classic reservoir baseline (a) needs the whole insertion history and
//! (b) cannot handle retractions at all.
//!
//! Run with: `cargo run --release --example network_monitor`

use perfect_sampling::prelude::*;
use std::collections::HashMap;

fn main() {
    let n = 96; // source universe (hashed /24s, say)
    let seed = 7;

    // Background traffic: moderate flows everywhere; two attackers.
    let mut flows = pts_stream::gen::uniform_vector(n, 40, seed);
    let attackers = [37u64, 81u64];
    let mut values = flows.values().to_vec();
    values[attackers[0] as usize] = 2_500;
    values[attackers[1] as usize] = 1_800;
    flows = FrequencyVector::from_values(values);

    let mut rng = pts_util::Xoshiro256pp::new(seed + 1);
    let stream = Stream::from_target(&flows, StreamStyle::Turnstile { churn: 0.5 }, &mut rng);
    println!(
        "traffic stream: {} updates, {} sources, attackers at {:?}",
        stream.len(),
        n,
        attackers
    );

    // Who dominates F4? (Ground truth, for reference.)
    let f4 = flows.fp_moment(4.0);
    let attacker_share: f64 = attackers
        .iter()
        .map(|&a| (flows.value(a).abs() as f64).powf(4.0) / f4)
        .sum();
    println!("attackers hold {:.2}% of F4\n", attacker_share * 100.0);

    // Draw 16 perfect L4 samples, one independent sampler each — they are
    // independent sketches, so run them across threads (the same way a
    // distributed deployment would shard them across machines).
    let params = PerfectLpParams::for_universe(n, 4.0);
    let samples: u64 = 16;
    let outcomes: Vec<Option<Sample>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..samples)
            .map(|t| {
                let stream = &stream;
                scope.spawn(move || {
                    let mut sampler = PerfectLpSampler::new(n, params, seed + 100 + t);
                    sampler.ingest_stream(stream);
                    sampler.sample()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sampler thread")).collect()
    });
    let mut hits: HashMap<u64, u32> = HashMap::new();
    let mut fails = 0;
    for outcome in outcomes {
        match outcome {
            Some(s) => *hits.entry(s.index).or_default() += 1,
            None => fails += 1,
        }
    }
    let mut report: Vec<(u64, u32)> = hits.into_iter().collect();
    report.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("perfect L4 sampling report ({samples} draws, {fails} ⊥):");
    for (src, count) in &report {
        let flag = if attackers.contains(src) { "  << attacker" } else { "" };
        println!("  source {src:>4}: {count:>2} hits{flag}");
    }
    let caught = report
        .iter()
        .filter(|(s, c)| attackers.contains(s) && *c >= 2)
        .count();
    println!("\ndetected {caught}/{} attackers with ≥2 hits", attackers.len());

    // The reservoir baseline cannot even ingest this stream.
    let mut reservoir = ReservoirSampler::new(seed);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        reservoir.ingest_stream(&stream);
    }));
    match outcome {
        Err(_) => println!(
            "reservoir baseline: panicked on the first deletion — \
             insertion-only samplers cannot monitor turnstile traffic"
        ),
        Ok(()) => println!("reservoir baseline unexpectedly survived (no deletions?)"),
    }
}
