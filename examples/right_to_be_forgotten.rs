//! The RFDS ("right to be forgotten data streaming") application of
//! Theorem 1.6: moment estimation over a query set revealed only *after*
//! the stream.
//!
//! A platform aggregates per-user engagement as a turnstile stream and keeps
//! only sublinear sketches. After the stream ends, a batch of users demands
//! erasure; analytics must now be answered over the *surviving* users `Q` —
//! but the sketches were built before `Q` was known. Algorithm 5 answers
//! `‖x_Q‖_p^p` with `O(1/(αε²))` sampler/estimator pairs.
//!
//! Run with: `cargo run --release --example right_to_be_forgotten`

use perfect_sampling::prelude::*;

fn main() {
    let n = 128;
    let p = 3.0;
    let seed = 99;

    // Engagement vector: zipf-skewed, with deletions in the stream.
    let activity = pts_stream::gen::zipf_vector(n, 1.0, 300, seed);
    let mut rng = pts_util::Xoshiro256pp::new(seed + 1);
    let stream = Stream::from_target(&activity, StreamStyle::Turnstile { churn: 0.4 }, &mut rng);

    // Build the sketches DURING the stream, before anyone asks to be
    // forgotten.
    let alpha = 0.3; // assumed lower bound on the surviving mass fraction
    let epsilon = 0.25;
    let params = SubsetNormParams::for_universe(n, p, epsilon, alpha);
    let mut estimator = SubsetNormEstimator::new(n, params, seed + 2);
    for u in stream.iter() {
        estimator.process(*u);
    }
    println!(
        "sketched {} updates into {} sampler/estimator pairs ({} space)",
        stream.len(),
        estimator.repetitions(),
        pts_util::table::fmt_bits(estimator.space_bits()),
    );

    // AFTER the stream: 40% of users demand erasure.
    let (kept, forgotten) = pts_stream::gen::rfds_split(n, 0.6, seed + 3);
    println!(
        "\nforget requests arrive: {} users erased, {} remain",
        forgotten.len(),
        kept.len()
    );

    let truth = activity.subset_fp(&kept, p);
    let full = activity.fp_moment(p);
    println!(
        "surviving mass fraction α = {:.3} (assumed ≥ {alpha})",
        truth / full
    );

    let got = estimator.query(&kept);
    let rel = (got - truth).abs() / truth;
    println!("\nF{p} over survivors:");
    println!("  exact   : {truth:.1}");
    println!("  estimate: {got:.1}  (relative error {:.1}%)", rel * 100.0);

    // The same sketches answer a *different* post-hoc query too — e.g. a
    // range query over the first half of the id space. Theorem 1.6's
    // accuracy is conditional on the query holding an α-fraction of the
    // moment; report whether this one does.
    let range_q: Vec<u64> = (0..n as u64 / 2).collect();
    let range_truth = activity.subset_fp(&range_q, p);
    let range_alpha = range_truth / full;
    let range_got = estimator.query(&range_q);
    println!("\nbonus range query over ids [0, {}):", n / 2);
    println!(
        "  exact {range_truth:.1}  estimate {range_got:.1}  (rel err {:.1}%)",
        (range_got - range_truth).abs() / range_truth * 100.0
    );
    if range_alpha < alpha {
        println!(
            "  note: this query's mass fraction α = {range_alpha:.2} is below the \
             configured assumption ({alpha}); Theorem 1.6 then needs \
             ~{} repetitions instead of the {} provisioned — expect the \
             error above to exceed ε accordingly.",
            ((4.0 / (range_alpha * epsilon * epsilon)).ceil()) as usize,
            estimator.repetitions(),
        );
    }
}
