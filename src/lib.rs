//! # perfect-sampling
//!
//! A Rust implementation of *Perfect Sampling in Turnstile Streams Beyond
//! Small Moments* (Woodruff, Xie, Zhou — PODS 2025): perfect and
//! approximate `G`-samplers for turnstile streams, including the first
//! perfect `L_p` sampler for `p > 2`, perfect polynomial samplers,
//! logarithmic/cap/bounded-`G` samplers, and post-stream subset-norm
//! estimation ("right to be forgotten").
//!
//! ## Quickstart
//!
//! ```
//! use perfect_sampling::prelude::*;
//!
//! // A turnstile stream: inserts and deletes over a universe of 32 items.
//! let mut sampler = PerfectLpSampler::new(
//!     32,
//!     PerfectLpParams::for_universe(32, 3.0), // perfect L3 sampling
//!     42,                                     // seed
//! );
//! sampler.process(Update::new(7, 10));
//! sampler.process(Update::new(3, 4));
//! sampler.process(Update::new(7, -6)); // deletion — turnstile
//! sampler.process(Update::new(21, 9));
//!
//! match sampler.sample() {
//!     Some(s) => println!("sampled index {} (≈ {})", s.index, s.estimate),
//!     None => println!("⊥ (FAIL — retry with an independent instance)"),
//! }
//! ```
//!
//! ## Always-queryable serving: the engine
//!
//! The paper's samplers are one-shot objects; [`pts_engine`] turns them
//! into a sharded, mergeable, continuously-queryable service:
//!
//! ```
//! use perfect_sampling::prelude::*;
//!
//! let mut engine = ShardedEngine::new(
//!     EngineConfig::new(1 << 10).shards(4).pool_size(2).seed(7),
//!     L0Factory::default(),
//! );
//! engine.ingest_batch(&[Update::new(3, 5), Update::new(900, -2)]);
//! let s = engine.sample().expect("non-zero state samples");
//! assert!(s.index == 3 || s.index == 900);
//! ```
//!
//! Under heavy traffic, [`pts_engine::ConcurrentEngine`] is the same engine
//! with one worker thread per shard — identical outputs (bit-for-bit, same
//! seeds), pipelined batched ingest, and parallel pool catch-up.
//!
//! Behind a socket, [`pts_server`] serves either engine over a framed,
//! request-id multiplexed TCP protocol (see `PROTOCOL.md`) with a
//! matching client — blocking methods plus a pipelined
//! `submit_*`/[`pts_server::Pending`] API — and `examples/serve_demo.rs`
//! runs the full ingest → sample → checkpoint → kill → restore arc over
//! loopback.
//!
//! ## Crate map
//!
//! * [`pts_obs`] — zero-dependency metrics + event tracing with a
//!   Prometheus-text scrape endpoint (start at [`pts_obs::MetricsServer`];
//!   compiled out entirely under `--no-default-features`).
//! * [`pts_cluster`] — the multi-node coordinator: N servers, one
//!   logical sampler (start at [`pts_cluster::Coordinator`]).
//! * [`pts_server`] — the TCP sampling service + client (start at
//!   [`pts_server::serve`]).
//! * [`pts_engine`] — the sharded, mergeable, always-queryable engine
//!   (start at [`pts_engine::ShardedEngine`]).
//! * [`pts_core`] — the paper's samplers (start at
//!   [`pts_core::PerfectLpSampler`]).
//! * [`pts_samplers`] — substrates: perfect L₀ (JST11), perfect L₂ (JW18),
//!   precision-sampling and reservoir baselines.
//! * [`pts_sketch`] — CountSketch (classic + JW18-modified), AMS, `F_p`
//!   estimators, heavy hitters, sparse recovery.
//! * [`pts_stream`] — the turnstile model, ground truth, workload
//!   generators.
//! * [`pts_util`] — seeded RNG streams, hash families, variates,
//!   statistics.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every reproduced table and figure.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub use pts_cluster;
pub use pts_core;
pub use pts_engine;
pub use pts_obs;
pub use pts_samplers;
pub use pts_server;
pub use pts_sketch;
pub use pts_stream;
pub use pts_util;

/// One-stop imports for applications.
pub mod prelude {
    pub use pts_cluster::{ClusterConfig, ClusterError, ClusterStats, Coordinator, NodeHealth};
    pub use pts_core::{
        ApproxLpBatch, ApproxLpParams, ApproxLpSampler, GSpec, PerfectLpParams, PerfectLpSampler,
        Polynomial, PolynomialParams, PolynomialSampler, RejectionGSampler, SubsetNormEstimator,
        SubsetNormParams,
    };
    pub use pts_engine::{
        ConcurrentEngine, EngineConfig, EngineSnapshot, EngineStats, L0Factory, LogGFactory,
        LpLe2Factory, PerfectLpFactory, SamplerFactory, SamplingService, ShardedEngine,
    };
    pub use pts_obs::{MetricsServer, MetricsServerConfig};
    pub use pts_samplers::{
        L0Params, LpLe2Batch, LpLe2Params, PerfectL0Sampler, PerfectLpLe2Sampler, PrecisionParams,
        PrecisionSampler, ReservoirSampler, Sample, TurnstileSampler,
    };
    pub use pts_server::{
        serve, serve_with_spawner, Client, ClientConfig, ClientError, Pending, Server,
    };
    pub use pts_sketch::LinearSketch;
    pub use pts_stream::{FrequencyVector, Stream, StreamStyle, Update};
    pub use pts_util::protocol::{ErrorCode, ServiceError, ServiceStats};
    pub use pts_util::wire::{Decode, Encode, WireError};
}
